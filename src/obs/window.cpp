#include "obs/window.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace dlis::obs {

RollingCounter::RollingCounter(RollingConfig config)
    : config_(config),
      bucketNs_(static_cast<uint64_t>(config.bucketSeconds * 1e9)),
      ring_(config.buckets)
{
    DLIS_CHECK(config_.buckets > 0, "rolling window needs >= 1 bucket");
    DLIS_CHECK(bucketNs_ > 0, "rolling bucket must span > 0 ns");
}

uint64_t
RollingCounter::epochOf(uint64_t nowNs) const noexcept
{
    return nowNs / bucketNs_;
}

void
RollingCounter::add(uint64_t n, uint64_t nowNs) noexcept
{
    const uint64_t epoch = epochOf(nowNs);
    Bucket &b = ring_[epoch % ring_.size()];
    uint64_t seen = b.epoch.load(std::memory_order_acquire);
    if (seen != epoch) {
        // This slot still holds an expired bucket: the first writer
        // of the new epoch recycles it. A concurrent add that lands
        // between the exchange and the reset can be lost — accepted,
        // see the class comment.
        if (b.epoch.compare_exchange_strong(seen, epoch,
                                            std::memory_order_acq_rel))
            b.value.store(0, std::memory_order_release);
        else if (seen != epoch)
            return; // raced with a different epoch; drop the sample
    }
    b.value.fetch_add(n, std::memory_order_relaxed);
}

uint64_t
RollingCounter::sum(uint64_t nowNs) const noexcept
{
    const uint64_t nowEpoch = epochOf(nowNs);
    const uint64_t oldest = nowEpoch >= ring_.size() - 1
                                ? nowEpoch - (ring_.size() - 1)
                                : 0;
    uint64_t total = 0;
    for (const Bucket &b : ring_) {
        const uint64_t epoch = b.epoch.load(std::memory_order_acquire);
        if (epoch != kNeverUsed && epoch >= oldest && epoch <= nowEpoch)
            total += b.value.load(std::memory_order_relaxed);
    }
    return total;
}

RollingHistogram::RollingHistogram(std::vector<double> bounds,
                                   RollingConfig config)
    : bounds_(std::move(bounds)), config_(config),
      bucketNs_(static_cast<uint64_t>(config.bucketSeconds * 1e9)),
      ring_(config.buckets)
{
    DLIS_CHECK(config_.buckets > 0, "rolling window needs >= 1 bucket");
    DLIS_CHECK(bucketNs_ > 0, "rolling bucket must span > 0 ns");
    DLIS_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()),
               "histogram bounds must ascend");
    for (Bucket &b : ring_)
        b.perBound.assign(bounds_.size() + 1, 0);
}

uint64_t
RollingHistogram::epochOf(uint64_t nowNs) const noexcept
{
    return nowNs / bucketNs_;
}

bool
RollingHistogram::liveEpoch(uint64_t epoch,
                            uint64_t nowEpoch) const noexcept
{
    if (epoch == kNeverUsed || epoch > nowEpoch)
        return false;
    const uint64_t oldest = nowEpoch >= ring_.size() - 1
                                ? nowEpoch - (ring_.size() - 1)
                                : 0;
    return epoch >= oldest;
}

void
RollingHistogram::record(double value, uint64_t nowNs)
{
    const uint64_t epoch = epochOf(nowNs);
    std::lock_guard<std::mutex> lock(mutex_);
    Bucket &b = ring_[epoch % ring_.size()];
    if (b.epoch != epoch) {
        b.epoch = epoch;
        b.count = 0;
        b.sum = 0.0;
        b.min = 0.0;
        b.max = 0.0;
        std::fill(b.perBound.begin(), b.perBound.end(), 0);
    }
    const auto it =
        std::lower_bound(bounds_.begin(), bounds_.end(), value);
    b.perBound[static_cast<size_t>(it - bounds_.begin())] += 1;
    if (b.count == 0 || value < b.min)
        b.min = value;
    if (b.count == 0 || value > b.max)
        b.max = value;
    b.count += 1;
    b.sum += value;
}

std::vector<uint64_t>
RollingHistogram::bucketCounts(uint64_t nowNs) const
{
    const uint64_t nowEpoch = epochOf(nowNs);
    std::vector<uint64_t> merged(bounds_.size() + 1, 0);
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Bucket &b : ring_) {
        if (!liveEpoch(b.epoch, nowEpoch))
            continue;
        for (size_t i = 0; i < merged.size(); ++i)
            merged[i] += b.perBound[i];
    }
    return merged;
}

WindowStats
RollingHistogram::stats(uint64_t nowNs) const
{
    const uint64_t nowEpoch = epochOf(nowNs);
    WindowStats s;
    s.windowSeconds = config_.windowSeconds();
    std::vector<uint64_t> merged(bounds_.size() + 1, 0);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const Bucket &b : ring_) {
            if (!liveEpoch(b.epoch, nowEpoch))
                continue;
            for (size_t i = 0; i < merged.size(); ++i)
                merged[i] += b.perBound[i];
            if (s.count == 0 || b.min < s.min)
                s.min = b.count ? b.min : s.min;
            if (b.count) {
                if (s.count == 0)
                    s.min = b.min;
                s.max = std::max(s.max, b.max);
            }
            s.count += b.count;
            s.sum += b.sum;
        }
    }
    if (s.count == 0)
        return s;
    s.p50 = quantileFromCounts(merged, s.count, 0.50, s.min, s.max);
    s.p90 = quantileFromCounts(merged, s.count, 0.90, s.min, s.max);
    s.p99 = quantileFromCounts(merged, s.count, 0.99, s.min, s.max);
    return s;
}

double
RollingHistogram::quantileFromCounts(
    const std::vector<uint64_t> &counts, uint64_t total, double q,
    double lo, double hi) const
{
    // Rank of the target observation (1-based, ceil'd so q=1 maps to
    // the last observation), then linear interpolation inside the
    // covering histogram bucket — the standard Prometheus
    // histogram_quantile estimate, clamped to the observed range so a
    // wide tail bucket cannot report a value no request experienced.
    const double rank = std::max(1.0, std::ceil(q * static_cast<double>(total)));
    uint64_t cumulative = 0;
    for (size_t i = 0; i < counts.size(); ++i) {
        if (counts[i] == 0)
            continue;
        const double before = static_cast<double>(cumulative);
        cumulative += counts[i];
        if (static_cast<double>(cumulative) < rank)
            continue;
        const double bucketLo = i == 0 ? lo : bounds_[i - 1];
        const double bucketHi = i < bounds_.size() ? bounds_[i] : hi;
        const double frac =
            (rank - before) / static_cast<double>(counts[i]);
        const double est = bucketLo + (bucketHi - bucketLo) * frac;
        return std::clamp(est, lo, hi);
    }
    return hi;
}

} // namespace dlis::obs
