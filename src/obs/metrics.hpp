/**
 * @file
 * Counter registry: monotonic counters keyed by name, with per-layer
 * scoping for expected-vs-actual attribution.
 *
 * Names use dotted scopes, "conv1.csr_row_visits": the scope is the
 * layer (or other span) the count is attributed to, the leaf is the
 * event kind. Metrics::kernelCounters("<layer>") hands a layer's
 * KernelCounters handle set to the backend kernels; acquisition takes
 * the registry mutex once per layer invocation, after which kernels
 * publish lock-free.
 */

#ifndef DLIS_OBS_METRICS_HPP
#define DLIS_OBS_METRICS_HPP

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "obs/counters.hpp"

namespace dlis::obs {

/** Well-known counter leaf names (the kernels' vocabulary). */
namespace counter_names {
inline constexpr const char *csrRowVisits = "csr_row_visits";
inline constexpr const char *ternaryDecodes = "ternary_decodes";
inline constexpr const char *gemmCalls = "gemm_calls";
inline constexpr const char *gemmMacs = "gemm_macs";
inline constexpr const char *im2colBytes = "im2col_bytes";
inline constexpr const char *ompRegions = "omp_regions";
inline constexpr const char *arenaBytes = "arena_bytes";
inline constexpr const char *arenaRewinds = "arena_rewinds";
/** @name Serving-engine leaves (scope "serve", src/serve/engine). */
/** @{ */
inline constexpr const char *serveSubmitted = "submitted";
inline constexpr const char *serveCompleted = "completed";
inline constexpr const char *serveRejected = "rejected";
inline constexpr const char *serveBatches = "batches";
/** @} */
} // namespace counter_names

/** Thread-safe registry of named monotonic counters. */
class Metrics
{
  public:
    /**
     * Find-or-create the counter named @p name. The returned reference
     * stays valid for the registry's lifetime (counters are
     * heap-allocated nodes; the map only stores owners).
     */
    Counter &counter(const std::string &name);

    /** Counter lookup without creation; null if absent. */
    const Counter *find(const std::string &name) const;

    /** Value of @p name, 0 if the counter was never created. */
    uint64_t value(const std::string &name) const;

    /** All counters and their current values, sorted by name. */
    std::map<std::string, uint64_t> snapshot() const;

    /**
     * Values of every counter under "<scope>.", keyed by leaf name
     * (e.g. scope "conv1" returns {"csr_row_visits": ...}).
     */
    std::map<std::string, uint64_t>
    scopeSnapshot(const std::string &scope) const;

    /** Zero every counter (registrations are kept). */
    void reset();

    /**
     * The full kernel handle set for one attribution scope, creating
     * "<scope>.<leaf>" counters as needed.
     */
    KernelCounters kernelCounters(const std::string &scope);

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
};

} // namespace dlis::obs

#endif // DLIS_OBS_METRICS_HPP
