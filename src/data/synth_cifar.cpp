#include "data/synth_cifar.hpp"

#include <cmath>

#include "core/error.hpp"

namespace dlis {

namespace {

/** Fixed per-class archetype parameters (deterministic by class id). */
struct ClassArchetype
{
    double freq;      //!< grating spatial frequency
    double angle;     //!< grating orientation
    double blobX;     //!< radial blob centre x in [0, 1]
    double blobY;     //!< radial blob centre y in [0, 1]
    double blobScale; //!< blob radius scale
    double rgb[3];    //!< base colour per channel
};

ClassArchetype
archetypeFor(size_t cls, size_t classes)
{
    // Derive stable parameters from the class id so the task is the
    // same across runs and dataset sizes.
    Rng rng(0xC1FA5u * 131 + cls);
    ClassArchetype a;
    a.freq = 1.5 + 0.9 * static_cast<double>(cls);
    a.angle = M_PI * static_cast<double>(cls) /
              static_cast<double>(classes);
    a.blobX = rng.uniform(0.2, 0.8);
    a.blobY = rng.uniform(0.2, 0.8);
    a.blobScale = rng.uniform(0.15, 0.35);
    for (double &c : a.rgb)
        c = rng.uniform(-0.8, 0.8);
    return a;
}

} // namespace

Dataset
makeSynthCifar(const SynthCifarOptions &options)
{
    DLIS_CHECK(options.count > 0 && options.classes > 0,
               "SynthCIFAR needs positive count and classes");
    const size_t s = options.imageSize;
    Rng rng(options.seed);

    Dataset data;
    data.images = Tensor(Shape{options.count, 3, s, s});
    data.labels.resize(options.count);

    std::vector<ClassArchetype> archetypes;
    for (size_t c = 0; c < options.classes; ++c)
        archetypes.push_back(archetypeFor(c, options.classes));

    for (size_t i = 0; i < options.count; ++i) {
        const size_t cls = i % options.classes;
        data.labels[i] = static_cast<int>(cls);
        const ClassArchetype &a = archetypes[cls];

        // Per-sample jitter: phase, blob offset, contrast.
        const double phase = rng.uniform(0.0, 2.0 * M_PI);
        const double dx = rng.uniform(-0.1, 0.1);
        const double dy = rng.uniform(-0.1, 0.1);
        const double contrast = rng.uniform(0.7, 1.3);

        float *img = data.images.data() + i * 3 * s * s;
        for (size_t ch = 0; ch < 3; ++ch) {
            for (size_t y = 0; y < s; ++y) {
                for (size_t x = 0; x < s; ++x) {
                    const double u =
                        static_cast<double>(x) / (s - 1);
                    const double v =
                        static_cast<double>(y) / (s - 1);
                    const double t = u * std::cos(a.angle) +
                                     v * std::sin(a.angle);
                    const double grating =
                        std::sin(2.0 * M_PI * a.freq * t + phase);
                    const double rx = u - (a.blobX + dx);
                    const double ry = v - (a.blobY + dy);
                    const double blob = std::exp(
                        -(rx * rx + ry * ry) /
                        (2.0 * a.blobScale * a.blobScale));
                    double val = contrast *
                                 (0.5 * grating + 0.8 * blob +
                                  a.rgb[ch]);
                    val += rng.normal(0.0, options.noise);
                    img[ch * s * s + y * s + x] =
                        static_cast<float>(val);
                }
            }
        }
    }
    return data;
}

SynthCifarSplit
makeSynthCifarSplit(size_t trainCount, size_t testCount, uint64_t seed,
                    double noise)
{
    SynthCifarOptions train_opts;
    train_opts.count = trainCount;
    train_opts.seed = seed;
    train_opts.noise = noise;

    SynthCifarOptions test_opts = train_opts;
    test_opts.count = testCount;
    test_opts.seed = seed ^ 0x5EEDFACEull;

    return {makeSynthCifar(train_opts), makeSynthCifar(test_opts)};
}

} // namespace dlis
