#include "data/dataset.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "core/error.hpp"

namespace dlis {

Tensor
Dataset::image(size_t index) const
{
    DLIS_CHECK(index < size(), "image index ", index,
               " out of range for ", size(), " images");
    const auto &d = images.shape().dims();
    const size_t chw = d[1] * d[2] * d[3];
    Tensor out(Shape{1, d[1], d[2], d[3]});
    std::memcpy(out.data(), images.data() + index * chw,
                chw * sizeof(float));
    return out;
}

DataLoader::DataLoader(const Dataset &data, size_t batchSize,
                       bool shuffle, bool augment, uint64_t seed)
    : data_(data), batchSize_(batchSize), shuffle_(shuffle),
      augment_(augment), rng_(seed), order_(data.size())
{
    DLIS_CHECK(batchSize_ > 0 && batchSize_ <= data_.size(),
               "batch size ", batchSize_, " invalid for ", data_.size(),
               " images");
    std::iota(order_.begin(), order_.end(), 0);
    if (shuffle_)
        reshuffle();
}

size_t
DataLoader::batchesPerEpoch() const
{
    return data_.size() / batchSize_;
}

void
DataLoader::reshuffle()
{
    // Fisher–Yates with our deterministic generator.
    for (size_t i = order_.size(); i > 1; --i) {
        const size_t j = rng_.uniformInt(i);
        std::swap(order_[i - 1], order_[j]);
    }
}

Batch
DataLoader::next()
{
    if (cursor_ + batchSize_ > data_.size()) {
        cursor_ = 0;
        if (shuffle_)
            reshuffle();
    }

    const auto &d = data_.images.shape().dims();
    const size_t c = d[1], h = d[2], w = d[3];
    const size_t chw = c * h * w;

    Batch batch;
    batch.images = Tensor(Shape{batchSize_, c, h, w});
    batch.labels.resize(batchSize_);

    for (size_t b = 0; b < batchSize_; ++b) {
        const size_t idx = order_[cursor_ + b];
        batch.labels[b] = data_.labels[idx];
        const float *src = data_.images.data() + idx * chw;
        float *dst = batch.images.data() + b * chw;

        if (!augment_) {
            std::memcpy(dst, src, chw * sizeof(float));
            continue;
        }

        // Pad with cropPad zeros on every side, take a random crop of
        // the original size: offsets in [0, 2*cropPad].
        const auto oy = static_cast<ptrdiff_t>(
            rng_.uniformInt(2 * cropPad + 1));
        const auto ox = static_cast<ptrdiff_t>(
            rng_.uniformInt(2 * cropPad + 1));
        const auto pad = static_cast<ptrdiff_t>(cropPad);
        for (size_t ch = 0; ch < c; ++ch) {
            for (size_t y = 0; y < h; ++y) {
                const ptrdiff_t sy =
                    static_cast<ptrdiff_t>(y) + oy - pad;
                for (size_t x = 0; x < w; ++x) {
                    const ptrdiff_t sx =
                        static_cast<ptrdiff_t>(x) + ox - pad;
                    float v = 0.0f;
                    if (sy >= 0 && sy < static_cast<ptrdiff_t>(h) &&
                        sx >= 0 && sx < static_cast<ptrdiff_t>(w))
                        v = src[ch * h * w + sy * w + sx];
                    dst[ch * h * w + y * w + x] = v;
                }
            }
        }
    }
    cursor_ += batchSize_;
    return batch;
}

} // namespace dlis
