/**
 * @file
 * Labelled image dataset and mini-batch loader.
 */

#ifndef DLIS_DATA_DATASET_HPP
#define DLIS_DATA_DATASET_HPP

#include <cstdint>
#include <vector>

#include "core/rng.hpp"
#include "core/tensor.hpp"

namespace dlis {

/** A labelled set of NCHW images. */
struct Dataset
{
    Tensor images;           //!< [count, channels, h, w]
    std::vector<int> labels; //!< one label per image

    /** Number of images. */
    size_t size() const { return labels.size(); }

    /** Copy one image out as a [1, c, h, w] tensor. */
    Tensor image(size_t index) const;
};

/** One training mini-batch. */
struct Batch
{
    Tensor images; //!< [batch, c, h, w]
    std::vector<int> labels;
};

/**
 * Deterministic mini-batch iterator with optional shuffling and
 * pad-and-random-crop augmentation (the paper pads each image with
 * 2x2 zeros and takes random 32x32 crops, §IV).
 */
class DataLoader
{
  public:
    /**
     * @param data        the dataset (not owned; must outlive loader)
     * @param batchSize   images per batch
     * @param shuffle     reshuffle indices every epoch
     * @param augment     apply pad-and-crop augmentation
     * @param seed        RNG seed for shuffling/cropping
     */
    DataLoader(const Dataset &data, size_t batchSize, bool shuffle,
               bool augment, uint64_t seed = 7);

    /** Batches per epoch (last partial batch is dropped). */
    size_t batchesPerEpoch() const;

    /** Fetch the next batch, wrapping (and reshuffling) at epoch end. */
    Batch next();

    /** Pad pixels added on each side before cropping. */
    static constexpr size_t cropPad = 2;

  private:
    void reshuffle();

    const Dataset &data_;
    size_t batchSize_;
    bool shuffle_;
    bool augment_;
    Rng rng_;
    std::vector<size_t> order_;
    size_t cursor_ = 0;
};

} // namespace dlis

#endif // DLIS_DATA_DATASET_HPP
