/**
 * @file
 * SynthCIFAR: a procedural stand-in for CIFAR-10.
 *
 * The real CIFAR-10 images are not shipped with this repository, so we
 * generate a 10-class, 32x32 RGB dataset with the same tensor shapes
 * and a comparable learning difficulty profile: each class is a
 * parametric texture archetype (oriented gratings, radial blobs,
 * colour fields) perturbed per-sample by random phase, offset, scale
 * and additive noise. Every systems-level measurement (time, memory)
 * is shape-identical to CIFAR-10; accuracy trends are exercised
 * end-to-end on this task. See DESIGN.md §3 for the substitution note.
 */

#ifndef DLIS_DATA_SYNTH_CIFAR_HPP
#define DLIS_DATA_SYNTH_CIFAR_HPP

#include "data/dataset.hpp"

namespace dlis {

/** Generation knobs. */
struct SynthCifarOptions
{
    size_t count = 1000;    //!< number of images
    size_t classes = 10;    //!< number of classes (cycled uniformly)
    size_t imageSize = 32;  //!< square image edge
    double noise = 0.25;    //!< additive Gaussian noise sigma
    uint64_t seed = 1234;   //!< generation seed
};

/** Generate a SynthCIFAR dataset. */
Dataset makeSynthCifar(const SynthCifarOptions &options);

/** Convenience: paper-style train/test split with a shared seed. */
struct SynthCifarSplit
{
    Dataset train;
    Dataset test;
};

/**
 * Generate train and test sets from disjoint sample streams (test uses
 * a derived seed so the sets never overlap).
 */
SynthCifarSplit makeSynthCifarSplit(size_t trainCount, size_t testCount,
                                    uint64_t seed = 1234,
                                    double noise = 0.25);

} // namespace dlis

#endif // DLIS_DATA_SYNTH_CIFAR_HPP
