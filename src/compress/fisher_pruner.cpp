#include "compress/fisher_pruner.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "nn/shape_walk.hpp"

namespace dlis {

FisherPruner::FisherPruner(Model &model, Shape inputShape,
                           FisherConfig config)
    : model_(model), inputShape_(std::move(inputShape)), config_(config),
      originalParams_(model.net.parameterCount())
{
    DLIS_CHECK(!model_.pruneUnits.empty(),
               "model exposes no prunable units");
    for (PruneUnit &unit : model_.pruneUnits)
        unit.probe->enableFisherProbe(unit.producer->cout());
}

FisherPruner::~FisherPruner()
{
    for (PruneUnit &unit : model_.pruneUnits)
        unit.probe->disableFisherProbe();
}

double
FisherPruner::channelFlops(const PruneUnit &unit) const
{
    const auto shapes = collectInputShapes(model_.net, inputShape_);

    auto macs_of = [&](Layer *layer) -> double {
        auto it = shapes.find(layer);
        DLIS_CHECK(it != shapes.end(), "layer '", layer->name(),
                   "' not found in shape walk");
        return static_cast<double>(layer->cost(it->second).denseMacs);
    };

    // Producer: MACs per output channel. Consumers: MACs per input
    // channel. A MAC is two FLOPs but the constant cancels in ranking;
    // we report MACs-as-FLOPs consistently with beta's calibration.
    double flops =
        macs_of(unit.producer) /
        static_cast<double>(unit.producer->cout());
    if (unit.coupledDw) {
        flops += macs_of(unit.coupledDw) /
                 static_cast<double>(unit.coupledDw->channels());
    }
    if (unit.consumerConv) {
        flops += macs_of(unit.consumerConv) /
                 static_cast<double>(unit.consumerConv->cin());
    }
    if (unit.consumerLinear) {
        const size_t channels = unit.consumerLinear->inFeatures() /
                                unit.consumerSpatial;
        flops += macs_of(unit.consumerLinear) /
                 static_cast<double>(channels);
    }
    return flops;
}

bool
FisherPruner::pruneOneChannel()
{
    PruneUnit *best_unit = nullptr;
    size_t best_channel = 0;
    double best_score = std::numeric_limits<double>::infinity();

    for (PruneUnit &unit : model_.pruneUnits) {
        if (unit.producer->cout() <= config_.minChannels)
            continue;
        const auto &fisher = unit.probe->fisherInfo();
        DLIS_ASSERT(fisher.size() == unit.producer->cout(),
                    "fisher probe out of sync in '", unit.name, "'");
        const double penalty = config_.flopPenalty * channelFlops(unit);
        for (size_t ch = 0; ch < fisher.size(); ++ch) {
            const double score = fisher[ch] + penalty;
            if (score < best_score) {
                best_score = score;
                best_unit = &unit;
                best_channel = ch;
            }
        }
    }
    if (!best_unit)
        return false;

    // Physically remove the channel everywhere it is referenced.
    std::vector<size_t> keep;
    keep.reserve(best_unit->producer->cout() - 1);
    for (size_t ch = 0; ch < best_unit->producer->cout(); ++ch)
        if (ch != best_channel)
            keep.push_back(ch);

    best_unit->producer->keepOutputChannels(keep);
    if (best_unit->bn)
        best_unit->bn->keepChannels(keep);
    if (best_unit->coupledDw)
        best_unit->coupledDw->keepChannels(keep);
    if (best_unit->coupledDwBn)
        best_unit->coupledDwBn->keepChannels(keep);
    if (best_unit->consumerConv)
        best_unit->consumerConv->keepInputChannels(keep);
    if (best_unit->consumerLinear) {
        best_unit->consumerLinear->keepInputChannels(
            keep, best_unit->consumerSpatial);
    }
    best_unit->probe->enableFisherProbe(keep.size());
    return true;
}

void
FisherPruner::run(Trainer &trainer, size_t channels)
{
    for (size_t i = 0; i < channels; ++i) {
        for (PruneUnit &unit : model_.pruneUnits)
            unit.probe->resetFisherInfo();
        trainer.trainSteps(config_.stepsBetweenPrunes,
                           config_.fineTuneLrScale);
        if (!pruneOneChannel())
            break;
        // Surgery replaced parameter tensors; rebuild optimiser state.
        trainer.resetOptimizer();
    }
}

double
FisherPruner::compressionRate()
{
    const size_t now = model_.net.parameterCount();
    return 1.0 - static_cast<double>(now) /
                     static_cast<double>(originalParams_);
}

} // namespace dlis
