/**
 * @file
 * Fisher channel pruning (Theis et al. 2018, Molchanov et al. 2017;
 * paper §III-B, §V-B2).
 *
 * Channel importance is the accumulated Fisher information at the ReLU
 * following each prunable convolution — the squared per-image spatial
 * sum of activation x gradient — a second-order Taylor approximation
 * of the loss change from removing the channel. A penalty proportional
 * to the channel's FLOP count (coefficient beta = 1e-6 in the paper)
 * biases removal toward expensive channels. Pruning is physical: the
 * producing conv, its batch norm, any coupled depthwise filters, and
 * the consumers' input slices are all re-cast into a smaller dense
 * network (the property that makes channel pruning the hardware
 * winner in Figs 4 and 5).
 */

#ifndef DLIS_COMPRESS_FISHER_PRUNER_HPP
#define DLIS_COMPRESS_FISHER_PRUNER_HPP

#include <vector>

#include "nn/models/model.hpp"
#include "train/trainer.hpp"

namespace dlis {

/** Fisher pruning hyper-parameters. */
struct FisherConfig
{
    double flopPenalty = 1e-6;     //!< beta in the paper (§V-B2)
    size_t stepsBetweenPrunes = 100; //!< fine-tune steps per removal
    double fineTuneLrScale = 0.08; //!< lr scale vs the base schedule
    size_t minChannels = 2;        //!< never prune a unit below this
};

/** Drives iterative fine-tune-and-prune over a model's PruneUnits. */
class FisherPruner
{
  public:
    /**
     * @param model      the model to prune (not owned)
     * @param inputShape a representative input (for FLOP accounting)
     * @param config     hyper-parameters
     */
    FisherPruner(Model &model, Shape inputShape, FisherConfig config);

    ~FisherPruner();

    FisherPruner(const FisherPruner &) = delete;
    FisherPruner &operator=(const FisherPruner &) = delete;

    /**
     * Remove @p channels channels: between removals, run
     * config.stepsBetweenPrunes fine-tuning steps on @p trainer (which
     * must be bound to the same model's network).
     */
    void run(Trainer &trainer, size_t channels);

    /**
     * Remove the single channel with the lowest
     * fisher + beta * flops score across all units.
     * @returns false when no unit can be pruned further.
     */
    bool pruneOneChannel();

    /** Parameters removed so far as a fraction of the original. */
    double compressionRate();

    /** Original (pre-pruning) parameter count. */
    size_t originalParams() const { return originalParams_; }

  private:
    /** FLOPs attributable to one channel of a unit. */
    double channelFlops(const PruneUnit &unit) const;

    Model &model_;
    Shape inputShape_;
    FisherConfig config_;
    size_t originalParams_;
};

} // namespace dlis

#endif // DLIS_COMPRESS_FISHER_PRUNER_HPP
