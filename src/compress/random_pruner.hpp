/**
 * @file
 * Random channel pruning — the surprising baseline the paper cites
 * (§III-B, [35]): "random pruning is also an effective strategy for
 * removing filters". Used as the control against Fisher pruning in
 * tests and the ablation bench: same surgery machinery, channels
 * chosen uniformly at random instead of by saliency.
 */

#ifndef DLIS_COMPRESS_RANDOM_PRUNER_HPP
#define DLIS_COMPRESS_RANDOM_PRUNER_HPP

#include "core/rng.hpp"
#include "nn/models/model.hpp"

namespace dlis {

/** Uniform-random channel remover over a model's PruneUnits. */
class RandomPruner
{
  public:
    /**
     * @param model the model to prune (not owned)
     * @param seed  RNG seed for channel selection
     */
    RandomPruner(Model &model, uint64_t seed);

    /**
     * Remove @p channels channels, each chosen uniformly from the
     * channels of a uniformly-chosen prunable unit (units at the
     * minimum width are skipped).
     *
     * @returns the number actually removed.
     */
    size_t removeChannels(size_t channels, size_t minChannels = 2);

    /** Parameters removed so far as a fraction of the original. */
    double compressionRate();

  private:
    Model &model_;
    Rng rng_;
    size_t originalParams_;
};

} // namespace dlis

#endif // DLIS_COMPRESS_RANDOM_PRUNER_HPP
