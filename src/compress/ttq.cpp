#include "compress/ttq.hpp"

#include <algorithm>
#include <cmath>

namespace dlis {

TtqQuantizer::TtqQuantizer(double threshold)
    : threshold_(threshold)
{
    DLIS_CHECK(threshold >= 0.0 && threshold <= 1.0,
               "TTQ threshold must be in [0, 1], got ", threshold);
}

std::vector<Tensor *>
TtqQuantizer::quantisableTensors(Model &model)
{
    std::vector<Tensor *> out;
    for (Conv2d *c : model.convs) {
        DLIS_CHECK(c->format() == WeightFormat::Dense,
                   "quantisation requires dense weights in '",
                   c->name(), "'");
        out.push_back(&c->weight());
    }
    for (Linear *l : model.linears) {
        DLIS_CHECK(l->format() == WeightFormat::Dense,
                   "quantisation requires dense weights in '",
                   l->name(), "'");
        out.push_back(&l->weight());
    }
    return out;
}

void
TtqQuantizer::quantiseTensor(Tensor &w)
{
    TernaryWeights t = TernaryWeights::quantise(w, threshold_);
    // Keep previously learned scales sticky across re-projections so
    // the scale-learning step (updateScales) is not undone.
    auto it = scales_.find(&w);
    if (it != scales_.end())
        t.setScales(it->second.first, it->second.second);
    else
        scales_[&w] = {t.wp(), t.wn()};
    const Tensor q = t.toDense();
    std::copy(q.data(), q.data() + q.numel(), w.data());
}

void
TtqQuantizer::updateScales(Model &model, double lr)
{
    auto update = [&](Tensor &w, const Tensor &grad) {
        auto it = scales_.find(&w);
        if (it == scales_.end())
            return;
        auto &[wp, wn] = it->second;
        // dL/dWp = sum of dL/dw over +Wp positions; for -Wn positions
        // the chain rule flips the sign (w = -Wn).
        double g_wp = 0.0, g_wn = 0.0;
        for (size_t i = 0; i < w.numel(); ++i) {
            if (w[i] > 0.0f)
                g_wp += grad[i];
            else if (w[i] < 0.0f)
                g_wn -= grad[i];
        }
        wp = std::max(0.0f, wp - static_cast<float>(lr * g_wp));
        wn = std::max(0.0f, wn - static_cast<float>(lr * g_wn));
        // Re-render the quantised weights with the new scales.
        for (size_t i = 0; i < w.numel(); ++i) {
            if (w[i] > 0.0f)
                w[i] = wp;
            else if (w[i] < 0.0f)
                w[i] = -wn;
        }
    };
    for (Conv2d *c : model.convs) {
        auto grads = c->gradients();
        update(c->weight(), *grads[0]);
    }
    for (Linear *l : model.linears) {
        auto grads = l->gradients();
        update(l->weight(), *grads[0]);
    }
}

std::pair<float, float>
TtqQuantizer::scalesFor(const Tensor *weights) const
{
    auto it = scales_.find(weights);
    DLIS_CHECK(it != scales_.end(),
               "tensor was not quantised by this quantizer");
    return it->second;
}

void
TtqQuantizer::quantise(Model &model)
{
    for (Tensor *w : quantisableTensors(model)) {
        shadow_.emplace(w, *w);
        quantiseTensor(*w);
    }
}

void
TtqQuantizer::requantise(Model &model)
{
    for (Tensor *w : quantisableTensors(model)) {
        auto it = shadow_.find(w);
        if (it == shadow_.end())
            continue;
        Tensor &shadow = it->second;
        // Straight-through: the optimiser stepped the *quantised*
        // values; apply the same delta to the shadow weights. The
        // previous quantised state is recoverable by re-projecting the
        // shadow, so the delta is w_now - quantise(shadow).
        Tensor prev_q = shadow;
        {
            const TernaryWeights t =
                TernaryWeights::quantise(shadow, threshold_);
            prev_q = t.toDense();
        }
        for (size_t i = 0; i < shadow.numel(); ++i)
            shadow[i] += (*w)[i] - prev_q[i];
        *w = shadow;
        quantiseTensor(*w);
    }
}

double
TtqQuantizer::sparsity(const Model &model) const
{
    return model.weightSparsity();
}

void
TtqQuantizer::quantiseToSparsity(Model &model, double sparsity)
{
    DLIS_CHECK(sparsity >= 0.0 && sparsity < 1.0,
               "sparsity must be in [0, 1), got ", sparsity);
    for (Tensor *w : quantisableTensors(model)) {
        const size_t n = w->numel();
        const auto zeroed = static_cast<size_t>(
            std::floor(sparsity * static_cast<double>(n)));

        std::vector<float> mags(n);
        for (size_t i = 0; i < n; ++i)
            mags[i] = std::fabs((*w)[i]);
        std::vector<float> sorted = mags;
        std::sort(sorted.begin(), sorted.end());
        const float cut = zeroed ? sorted[zeroed - 1] : -1.0f;

        // Mean retained magnitudes become the per-layer scales.
        double pos_sum = 0.0, neg_sum = 0.0;
        size_t pos_n = 0, neg_n = 0;
        size_t dropped = 0;
        std::vector<int8_t> sign(n, 0);
        for (size_t i = 0; i < n; ++i) {
            if (dropped < zeroed && mags[i] <= cut) {
                ++dropped;
                continue;
            }
            if ((*w)[i] > 0.0f) {
                sign[i] = 1;
                pos_sum += (*w)[i];
                ++pos_n;
            } else {
                sign[i] = -1;
                neg_sum += -(*w)[i];
                ++neg_n;
            }
        }
        const float wp =
            pos_n ? static_cast<float>(pos_sum / pos_n) : 0.0f;
        const float wn =
            neg_n ? static_cast<float>(neg_sum / neg_n) : 0.0f;
        for (size_t i = 0; i < n; ++i)
            (*w)[i] = sign[i] > 0 ? wp : (sign[i] < 0 ? -wn : 0.0f);
    }
}

} // namespace dlis
