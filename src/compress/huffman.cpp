#include "compress/huffman.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "core/error.hpp"

namespace dlis {

namespace {

/** Build canonical code lengths from a symbol histogram. */
std::map<uint32_t, uint8_t>
codeLengths(const std::map<uint32_t, size_t> &histogram)
{
    // Classic two-queue Huffman over (count, node) pairs.
    struct Node
    {
        size_t count;
        std::vector<uint32_t> symbols;
    };
    auto cmp = [](const Node &a, const Node &b) {
        return a.count > b.count;
    };
    std::priority_queue<Node, std::vector<Node>, decltype(cmp)> heap(
        cmp);
    for (const auto &[sym, count] : histogram)
        heap.push({count, {sym}});

    std::map<uint32_t, uint8_t> lengths;
    if (heap.size() == 1) {
        lengths[heap.top().symbols[0]] = 1;
        return lengths;
    }
    while (heap.size() > 1) {
        Node a = heap.top();
        heap.pop();
        Node b = heap.top();
        heap.pop();
        for (uint32_t s : a.symbols)
            ++lengths[s]; // deepen every leaf under the merge
        for (uint32_t s : b.symbols)
            ++lengths[s];
        Node merged{a.count + b.count, std::move(a.symbols)};
        merged.symbols.insert(merged.symbols.end(), b.symbols.begin(),
                              b.symbols.end());
        heap.push(std::move(merged));
    }
    return lengths;
}

} // namespace

HuffmanStream
HuffmanStream::encode(const std::vector<uint32_t> &symbols)
{
    DLIS_CHECK(!symbols.empty(), "cannot encode an empty stream");

    std::map<uint32_t, size_t> histogram;
    for (uint32_t s : symbols)
        ++histogram[s];

    const auto lengths = codeLengths(histogram);

    // Canonical code assignment: sort by (length, symbol).
    std::vector<std::pair<uint8_t, uint32_t>> order;
    order.reserve(lengths.size());
    for (const auto &[sym, len] : lengths)
        order.emplace_back(len, sym);
    std::sort(order.begin(), order.end());

    HuffmanStream out;
    uint32_t code = 0;
    uint8_t prev_len = order.empty() ? 0 : order.front().first;
    for (const auto &[len, sym] : order) {
        code <<= (len - prev_len);
        out.table_[sym] = {code, len};
        ++code;
        prev_len = len;
    }

    // Emit the bit stream, MSB first.
    out.count_ = symbols.size();
    for (uint32_t s : symbols) {
        const Code &c = out.table_.at(s);
        for (int bit = c.length - 1; bit >= 0; --bit) {
            const size_t pos = out.bitLength_++;
            if (pos / 8 >= out.payload_.size())
                out.payload_.push_back(0);
            if ((c.bits >> bit) & 1)
                out.payload_[pos / 8] |=
                    static_cast<uint8_t>(1 << (7 - pos % 8));
        }
    }
    return out;
}

std::vector<uint32_t>
HuffmanStream::decode() const
{
    // Build a (bits, length) -> symbol reverse map.
    std::map<std::pair<uint32_t, uint8_t>, uint32_t> reverse;
    for (const auto &[sym, code] : table_)
        reverse[{code.bits, code.length}] = sym;

    std::vector<uint32_t> out;
    out.reserve(count_);
    uint32_t acc = 0;
    uint8_t acc_len = 0;
    for (size_t pos = 0; pos < bitLength_ && out.size() < count_;
         ++pos) {
        const int bit =
            (payload_[pos / 8] >> (7 - pos % 8)) & 1;
        acc = (acc << 1) | static_cast<uint32_t>(bit);
        ++acc_len;
        auto it = reverse.find({acc, acc_len});
        if (it != reverse.end()) {
            out.push_back(it->second);
            acc = 0;
            acc_len = 0;
        }
    }
    DLIS_ASSERT(out.size() == count_, "Huffman stream truncated: got ",
                out.size(), " of ", count_, " symbols");
    return out;
}

size_t
HuffmanStream::payloadBytes() const
{
    return (bitLength_ + 7) / 8;
}

size_t
HuffmanStream::tableBytes() const
{
    // symbol id (4 B) + code length (1 B) per entry; canonical codes
    // are reconstructible from lengths alone.
    return table_.size() * 5;
}

size_t
HuffmanStream::totalBytes() const
{
    return payloadBytes() + tableBytes();
}

double
HuffmanStream::bitsPerSymbol() const
{
    return count_ ? static_cast<double>(bitLength_) /
                        static_cast<double>(count_)
                  : 0.0;
}

std::vector<uint32_t>
bucketWeights(const Tensor &weights, size_t levels)
{
    DLIS_CHECK(levels >= 2, "need at least 2 bucket levels");
    float max_abs = 0.0f;
    for (size_t i = 0; i < weights.numel(); ++i)
        max_abs = std::max(max_abs, std::fabs(weights[i]));

    std::vector<uint32_t> symbols(weights.numel());
    if (max_abs == 0.0f)
        return symbols; // all zero -> symbol 0
    for (size_t i = 0; i < weights.numel(); ++i) {
        const float v = weights[i];
        if (v == 0.0f) {
            symbols[i] = 0; // pruned weights share the zero symbol
            continue;
        }
        const double unit = (v / max_abs + 1.0) / 2.0; // [0, 1]
        const auto bucket = static_cast<uint32_t>(std::min(
            static_cast<double>(levels - 1),
            std::floor(unit * static_cast<double>(levels))));
        symbols[i] = bucket + 1; // 0 is reserved for exact zero
    }
    return symbols;
}

size_t
deepCompressionStorageBytes(const Tensor &weights, size_t levels)
{
    const auto symbols = bucketWeights(weights, levels);
    const HuffmanStream stream = HuffmanStream::encode(symbols);
    return stream.totalBytes() + levels * sizeof(float);
}

} // namespace dlis
