#include "compress/random_pruner.hpp"

namespace dlis {

RandomPruner::RandomPruner(Model &model, uint64_t seed)
    : model_(model), rng_(seed),
      originalParams_(model.net.parameterCount())
{
    DLIS_CHECK(!model_.pruneUnits.empty(),
               "model exposes no prunable units");
}

size_t
RandomPruner::removeChannels(size_t channels, size_t minChannels)
{
    size_t removed = 0;
    for (size_t i = 0; i < channels; ++i) {
        // Collect units that can still lose a channel.
        std::vector<PruneUnit *> eligible;
        for (PruneUnit &u : model_.pruneUnits)
            if (u.producer->cout() > minChannels)
                eligible.push_back(&u);
        if (eligible.empty())
            break;

        PruneUnit &unit =
            *eligible[rng_.uniformInt(eligible.size())];
        const size_t victim =
            rng_.uniformInt(unit.producer->cout());

        std::vector<size_t> keep;
        keep.reserve(unit.producer->cout() - 1);
        for (size_t ch = 0; ch < unit.producer->cout(); ++ch)
            if (ch != victim)
                keep.push_back(ch);

        unit.producer->keepOutputChannels(keep);
        if (unit.bn)
            unit.bn->keepChannels(keep);
        if (unit.coupledDw)
            unit.coupledDw->keepChannels(keep);
        if (unit.coupledDwBn)
            unit.coupledDwBn->keepChannels(keep);
        if (unit.consumerConv)
            unit.consumerConv->keepInputChannels(keep);
        if (unit.consumerLinear)
            unit.consumerLinear->keepInputChannels(
                keep, unit.consumerSpatial);
        if (unit.probe->fisherInfo().size() > 0)
            unit.probe->enableFisherProbe(keep.size());
        ++removed;
    }
    return removed;
}

double
RandomPruner::compressionRate()
{
    return 1.0 - static_cast<double>(model_.net.parameterCount()) /
                     static_cast<double>(originalParams_);
}

} // namespace dlis
