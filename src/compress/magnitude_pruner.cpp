#include "compress/magnitude_pruner.hpp"

#include <algorithm>
#include <cmath>

namespace dlis {

std::vector<Tensor *>
MagnitudePruner::prunableTensors(Model &model)
{
    std::vector<Tensor *> out;
    for (Conv2d *c : model.convs) {
        DLIS_CHECK(c->format() == WeightFormat::Dense,
                   "pruning requires dense weights in '", c->name(),
                   "'");
        out.push_back(&c->weight());
    }
    for (Linear *l : model.linears) {
        DLIS_CHECK(l->format() == WeightFormat::Dense,
                   "pruning requires dense weights in '", l->name(),
                   "'");
        out.push_back(&l->weight());
    }
    return out;
}

void
MagnitudePruner::maskTensorToSparsity(Tensor &w, double sparsity)
{
    const size_t n = w.numel();
    const auto drop = static_cast<size_t>(
        std::floor(sparsity * static_cast<double>(n)));

    std::vector<uint8_t> mask(n, 1);
    if (drop > 0) {
        // Find the drop-th smallest magnitude, then zero everything at
        // or below it (ties broken by order to hit the count exactly).
        std::vector<float> mags(n);
        for (size_t i = 0; i < n; ++i)
            mags[i] = std::fabs(w[i]);
        std::vector<float> sorted = mags;
        std::nth_element(sorted.begin(), sorted.begin() + (drop - 1),
                         sorted.end());
        const float cut = sorted[drop - 1];

        size_t zeroed = 0;
        for (size_t i = 0; i < n && zeroed < drop; ++i) {
            if (mags[i] < cut) {
                mask[i] = 0;
                ++zeroed;
            }
        }
        for (size_t i = 0; i < n && zeroed < drop; ++i) {
            if (mask[i] && mags[i] == cut) {
                mask[i] = 0;
                ++zeroed;
            }
        }
        for (size_t i = 0; i < n; ++i)
            if (!mask[i])
                w[i] = 0.0f;
    }
    masks_[&w] = std::move(mask);
}

void
MagnitudePruner::maskTensorByThreshold(Tensor &w, float threshold)
{
    std::vector<uint8_t> mask(w.numel(), 1);
    for (size_t i = 0; i < w.numel(); ++i) {
        if (std::fabs(w[i]) < threshold) {
            mask[i] = 0;
            w[i] = 0.0f;
        }
    }
    masks_[&w] = std::move(mask);
}

void
MagnitudePruner::pruneToSparsity(Model &model, double sparsity)
{
    DLIS_CHECK(sparsity >= 0.0 && sparsity < 1.0,
               "sparsity must be in [0, 1), got ", sparsity);
    for (Tensor *w : prunableTensors(model))
        maskTensorToSparsity(*w, sparsity);
}

double
MagnitudePruner::pruneByStd(Model &model, double qualityFactor)
{
    DLIS_CHECK(qualityFactor >= 0.0, "quality factor must be >= 0");
    size_t zeros = 0, total = 0;
    for (Tensor *w : prunableTensors(model)) {
        // Per-layer threshold from the layer's weight deviation [10].
        double sum = 0.0, sq = 0.0;
        for (size_t i = 0; i < w->numel(); ++i) {
            sum += (*w)[i];
            sq += static_cast<double>((*w)[i]) * (*w)[i];
        }
        const double mean = sum / static_cast<double>(w->numel());
        const double var =
            sq / static_cast<double>(w->numel()) - mean * mean;
        const float cut = static_cast<float>(
            qualityFactor * std::sqrt(std::max(var, 0.0)));
        maskTensorByThreshold(*w, cut);
        zeros += w->countZeros();
        total += w->numel();
    }
    return total ? static_cast<double>(zeros) / total : 0.0;
}

void
MagnitudePruner::applyMasks(Model &model) const
{
    for (Conv2d *c : model.convs) {
        auto it = masks_.find(&c->weight());
        if (it == masks_.end())
            continue;
        Tensor &w = c->weight();
        for (size_t i = 0; i < w.numel(); ++i)
            if (!it->second[i])
                w[i] = 0.0f;
    }
    for (Linear *l : model.linears) {
        auto it = masks_.find(&l->weight());
        if (it == masks_.end())
            continue;
        Tensor &w = l->weight();
        for (size_t i = 0; i < w.numel(); ++i)
            if (!it->second[i])
                w[i] = 0.0f;
    }
}

} // namespace dlis
