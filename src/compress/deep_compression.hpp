/**
 * @file
 * The Deep Compression pipeline driver (paper §V-B1): "we set the
 * initial threshold such that 50% of weights (those with the lowest
 * magnitude) are zeroed out. After fine-tuning the network for 30
 * epochs ... we increase the threshold and repeat to achieve greater
 * sparsity", ending with weight-sharing + Huffman storage.
 */

#ifndef DLIS_COMPRESS_DEEP_COMPRESSION_HPP
#define DLIS_COMPRESS_DEEP_COMPRESSION_HPP

#include <vector>

#include "compress/magnitude_pruner.hpp"
#include "train/trainer.hpp"

namespace dlis {

/** Pipeline schedule. */
struct DeepCompressionConfig
{
    double initialSparsity = 0.5;  //!< first pruning round (§V-B1)
    double targetSparsity = 0.9;   //!< final sparsity
    double sparsityStep = 0.1;     //!< threshold increase per round
    size_t fineTuneSteps = 30;     //!< optimiser steps per round
    double fineTuneLrScale = 0.1;  //!< lr scale during fine-tuning
    size_t huffmanLevels = 32;     //!< weight-sharing codebook size
};

/** One pruning round's outcome. */
struct CompressionRound
{
    double sparsity = 0.0;     //!< sparsity after the round
    double trainLoss = 0.0;    //!< fine-tune loss at round end
    double trainAccuracy = 0.0;
};

/** Iterative prune-and-retrain with Huffman storage accounting. */
class DeepCompression
{
  public:
    explicit DeepCompression(DeepCompressionConfig config = {});

    /**
     * Run the full schedule on @p model, fine-tuning with @p trainer
     * between rounds (masks are re-applied after every step).
     *
     * @returns one entry per pruning round.
     */
    std::vector<CompressionRound> run(Model &model, Trainer &trainer);

    /**
     * Shipped-model bytes after prune -> weight-share -> Huffman, for
     * every prunable tensor of @p model.
     */
    size_t storageBytes(const Model &model) const;

    /** The pruner (exposes masks for further fine-tuning). */
    MagnitudePruner &pruner() { return pruner_; }

  private:
    DeepCompressionConfig config_;
    MagnitudePruner pruner_;
};

} // namespace dlis

#endif // DLIS_COMPRESS_DEEP_COMPRESSION_HPP
