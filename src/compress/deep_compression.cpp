#include "compress/deep_compression.hpp"

#include <algorithm>

#include "compress/huffman.hpp"

namespace dlis {

DeepCompression::DeepCompression(DeepCompressionConfig config)
    : config_(config)
{
    DLIS_CHECK(config_.initialSparsity > 0.0 &&
               config_.initialSparsity < 1.0 &&
               config_.targetSparsity < 1.0 &&
               config_.sparsityStep > 0.0,
               "bad Deep Compression schedule");
}

std::vector<CompressionRound>
DeepCompression::run(Model &model, Trainer &trainer)
{
    std::vector<CompressionRound> rounds;

    for (double sparsity = config_.initialSparsity;
         sparsity <= config_.targetSparsity + 1e-9;
         sparsity += config_.sparsityStep) {
        const double target = std::min(sparsity, config_.targetSparsity);
        pruner_.pruneToSparsity(model, target);

        trainer.setPostStepHook([&] { pruner_.applyMasks(model); });
        const EpochStats stats = trainer.trainSteps(
            config_.fineTuneSteps, config_.fineTuneLrScale);
        trainer.setPostStepHook(nullptr);

        rounds.push_back(
            {model.weightSparsity(), stats.loss, stats.accuracy});
        if (target >= config_.targetSparsity)
            break;
    }
    return rounds;
}

size_t
DeepCompression::storageBytes(const Model &model) const
{
    size_t bytes = 0;
    for (const Conv2d *c : model.convs)
        bytes += deepCompressionStorageBytes(c->weight(),
                                             config_.huffmanLevels);
    for (const Linear *l : model.linears)
        bytes += deepCompressionStorageBytes(l->weight(),
                                             config_.huffmanLevels);
    return bytes;
}

} // namespace dlis
