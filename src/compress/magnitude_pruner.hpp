/**
 * @file
 * Deep-Compression-style magnitude weight pruning (Han et al.;
 * paper §III-A, §V-B1).
 *
 * The paper's recipe: zero the lowest-magnitude weights layer-by-layer
 * (initially 50 %), fine-tune for ~30 epochs, raise the threshold and
 * repeat. The pruner keeps per-tensor binary masks so fine-tuning can
 * re-zero pruned weights after every optimiser step (the post-step
 * hook of train/trainer.hpp).
 *
 * Two threshold rules are provided:
 *  - pruneToSparsity: exact per-layer percentile (used when a target
 *    sparsity from the paper's tables must be hit exactly);
 *  - pruneByStd: threshold = q * stddev(layer), the rule of [10].
 */

#ifndef DLIS_COMPRESS_MAGNITUDE_PRUNER_HPP
#define DLIS_COMPRESS_MAGNITUDE_PRUNER_HPP

#include <cstdint>
#include <map>
#include <vector>

#include "nn/models/model.hpp"

namespace dlis {

/** Magnitude pruner with persistent masks. */
class MagnitudePruner
{
  public:
    MagnitudePruner() = default;

    /**
     * Zero the lowest-|w| fraction of each prunable tensor (conv and
     * linear weights; dense format required) and record masks.
     */
    void pruneToSparsity(Model &model, double sparsity);

    /**
     * Zero weights with |w| < q * stddev per tensor and record masks.
     * Returns the resulting overall sparsity.
     */
    double pruneByStd(Model &model, double qualityFactor);

    /** Re-apply the recorded masks (post-optimiser-step hook). */
    void applyMasks(Model &model) const;

    /** True once any mask has been recorded. */
    bool hasMasks() const { return !masks_.empty(); }

    /** Forget all masks. */
    void reset() { masks_.clear(); }

  private:
    static std::vector<Tensor *> prunableTensors(Model &model);

    void maskTensorToSparsity(Tensor &w, double sparsity);
    void maskTensorByThreshold(Tensor &w, float threshold);

    /** Mask per tensor: 1 keeps the weight, 0 forces it to zero. */
    std::map<const Tensor *, std::vector<uint8_t>> masks_;
};

} // namespace dlis

#endif // DLIS_COMPRESS_MAGNITUDE_PRUNER_HPP
