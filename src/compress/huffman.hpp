/**
 * @file
 * Huffman coding of weight streams — the third stage of Deep
 * Compression (Han et al., cited as the paper's weight-pruning method,
 * §III-A: "a three stage method for storing the network involving
 * pruning, quantisation, and Huffman coding").
 *
 * Weights are bucketed into discrete symbols (quantised weights are
 * already discrete; pruned float weights are bucketed by a quantiser
 * grid), a canonical Huffman code is built from the symbol histogram,
 * and the encoded bit length gives the *storage* footprint of the
 * shipped model. Decoding restores the symbol stream exactly.
 */

#ifndef DLIS_COMPRESS_HUFFMAN_HPP
#define DLIS_COMPRESS_HUFFMAN_HPP

#include <cstdint>
#include <map>
#include <vector>

#include "core/tensor.hpp"

namespace dlis {

/** A Huffman-encoded symbol stream. */
class HuffmanStream
{
  public:
    /**
     * Encode a stream of discrete symbols.
     *
     * @param symbols the symbol id of each element
     */
    static HuffmanStream encode(const std::vector<uint32_t> &symbols);

    /** Decode back to the exact original symbol stream. */
    std::vector<uint32_t> decode() const;

    /** Encoded payload size in bytes (bits rounded up). */
    size_t payloadBytes() const;

    /** Code-table size in bytes (symbol + length per entry). */
    size_t tableBytes() const;

    /** payloadBytes() + tableBytes(). */
    size_t totalBytes() const;

    /** Number of encoded symbols. */
    size_t symbolCount() const { return count_; }

    /** Mean code length in bits (the entropy-rate achieved). */
    double bitsPerSymbol() const;

  private:
    struct Code
    {
        uint32_t bits = 0; //!< code value, MSB-first in 'length' bits
        uint8_t length = 0;
    };

    std::map<uint32_t, Code> table_;
    std::vector<uint8_t> payload_;
    size_t bitLength_ = 0;
    size_t count_ = 0;
};

/**
 * Bucket float weights onto a uniform grid of @p levels between
 * [-maxAbs, +maxAbs] (zero maps to its own symbol), returning symbol
 * ids usable with HuffmanStream. This mirrors Deep Compression's
 * weight-sharing stage.
 */
std::vector<uint32_t> bucketWeights(const Tensor &weights,
                                    size_t levels);

/**
 * Shipped-model size of a weight tensor under
 * prune -> bucket -> Huffman, in bytes (payload + table + one float
 * per level for the codebook).
 */
size_t deepCompressionStorageBytes(const Tensor &weights,
                                   size_t levels = 32);

} // namespace dlis

#endif // DLIS_COMPRESS_HUFFMAN_HPP
