/**
 * @file
 * Trained Ternary Quantisation (Zhu et al., ICLR 2017; paper §III-C,
 * §V-B3).
 *
 * Each layer's weights are constrained to {-Wn, 0, +Wp}: magnitudes at
 * or below t * max|w| are zeroed, the rest snap to a per-layer
 * positive or negative scale (initialised to the mean retained
 * magnitude, refined during fine-tuning). Fine-tuning uses a
 * straight-through scheme: SGD updates full-precision shadow weights
 * and the quantiser re-projects after every step (the trainer's
 * post-step hook).
 */

#ifndef DLIS_COMPRESS_TTQ_HPP
#define DLIS_COMPRESS_TTQ_HPP

#include <map>
#include <vector>

#include "nn/models/model.hpp"
#include "sparse/ternary.hpp"

namespace dlis {

/** TTQ quantiser with shadow weights for fine-tuning. */
class TtqQuantizer
{
  public:
    /** @param threshold the TTQ threshold hyper-parameter t. */
    explicit TtqQuantizer(double threshold);

    /**
     * Quantise every conv and linear weight in place; the original
     * full-precision weights are kept as shadow copies.
     */
    void quantise(Model &model);

    /**
     * Post-optimiser-step projection: fold the step taken on the
     * quantised weights back into the shadow weights, then re-quantise
     * (straight-through estimate).
     */
    void requantise(Model &model);

    /**
     * TTQ's second step (§III-C): adjust the per-layer scales along
     * their loss gradients. The gradient of the loss w.r.t. Wp is the
     * sum of the weight gradients at positions currently assigned
     * +Wp (and analogously, negated, for Wn) — call after a backward
     * pass and before the optimiser step.
     *
     * @param model the quantised model (gradients must be populated)
     * @param lr    learning rate for the scale update
     */
    void updateScales(Model &model, double lr);

    /** Learned (wp, wn) for a quantised tensor, for inspection. */
    std::pair<float, float> scalesFor(const Tensor *weights) const;

    /** Overall fraction of zeroed weights across quantised tensors. */
    double sparsity(const Model &model) const;

    /**
     * Quantise with an exact target zero-fraction instead of a
     * threshold (used to pin the paper's reported sparsity levels).
     */
    static void quantiseToSparsity(Model &model, double sparsity);

    /** The threshold this quantiser applies. */
    double threshold() const { return threshold_; }

  private:
    static std::vector<Tensor *> quantisableTensors(Model &model);

    void quantiseTensor(Tensor &w);

    double threshold_;
    std::map<const Tensor *, Tensor> shadow_;
    std::map<const Tensor *, std::pair<float, float>> scales_;
};

} // namespace dlis

#endif // DLIS_COMPRESS_TTQ_HPP
