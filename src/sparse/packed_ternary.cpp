#include "sparse/packed_ternary.hpp"

#include <cmath>

#include "core/error.hpp"

namespace dlis {

PackedTernary
PackedTernary::pack(const Tensor &dense)
{
    PackedTernary p;
    p.shape_ = dense.shape();
    p.count_ = dense.numel();
    p.words_.assign((p.count_ + 3) / 4, 0);

    // Discover the scales from the data.
    for (size_t i = 0; i < p.count_; ++i) {
        const float v = dense[i];
        if (v > 0.0f) {
            DLIS_CHECK(p.wp_ == 0.0f || p.wp_ == v,
                       "tensor is not ternary: positive values ",
                       p.wp_, " and ", v);
            p.wp_ = v;
        } else if (v < 0.0f) {
            DLIS_CHECK(p.wn_ == 0.0f || p.wn_ == -v,
                       "tensor is not ternary: negative values ",
                       -p.wn_, " and ", v);
            p.wn_ = -v;
        }
    }
    for (size_t i = 0; i < p.count_; ++i) {
        const float v = dense[i];
        uint8_t code = 0;
        if (v > 0.0f)
            code = 1;
        else if (v < 0.0f)
            code = 2;
        p.words_[i >> 2] |=
            static_cast<uint8_t>(code << ((i & 3) * 2));
    }
    p.tracked_ = TrackedBytes(MemClass::Weights, p.storageBytes());
    return p;
}

PackedTernary
PackedTernary::fromRaw(Shape shape, std::vector<uint8_t> words,
                       float wp, float wn)
{
    PackedTernary p;
    p.count_ = shape.numel();
    p.shape_ = std::move(shape);
    p.words_ = std::move(words);
    p.wp_ = wp;
    p.wn_ = wn;
    p.tracked_ = TrackedBytes(MemClass::Weights, p.storageBytes());
    return p;
}

Tensor
PackedTernary::toDense() const
{
    Tensor out(shape_, MemClass::Weights);
    for (size_t i = 0; i < count_; ++i)
        out[i] = decode(i);
    return out;
}

size_t
PackedTernary::storageBytes() const
{
    return words_.size() + 2 * sizeof(float);
}

double
PackedTernary::sparsity() const
{
    if (count_ == 0)
        return 0.0;
    size_t zeros = 0;
    for (size_t i = 0; i < count_; ++i)
        if (decode(i) == 0.0f)
            ++zeros;
    return static_cast<double>(zeros) / static_cast<double>(count_);
}

} // namespace dlis
