/**
 * @file
 * Compressed Sparse Row (CSR) matrix.
 *
 * The paper stores weight-pruned and ternary-quantised filters in CSR
 * (§IV-C) and observes that for small 3x3 filters CSR *costs* memory:
 * the rowPtr/colIdx metadata exceeds the savings from dropping zeros.
 * We reproduce that from first principles: index arrays are tracked as
 * MemClass::SparseMeta, values as MemClass::Weights, so footprint
 * tables decompose exactly.
 *
 * A conv layer's OIHW filter bank is stored as one CSR matrix of shape
 * [O, I*KH*KW]; row o holds the non-zeros of output-channel o's filter.
 */

#ifndef DLIS_SPARSE_CSR_HPP
#define DLIS_SPARSE_CSR_HPP

#include <cstdint>
#include <vector>

#include "core/memory_tracker.hpp"
#include "core/tensor.hpp"

namespace dlis {

/** A float CSR matrix with tracked storage. */
class CsrMatrix
{
  public:
    /** An empty 0x0 matrix. */
    CsrMatrix() = default;

    /**
     * Build from a dense row-major matrix, dropping exact zeros.
     *
     * @param dense  row-major values, size rows*cols
     * @param rows   row count
     * @param cols   column count
     */
    static CsrMatrix fromDense(const float *dense, size_t rows,
                               size_t cols);

    /** Build from a rank-2 tensor. */
    static CsrMatrix fromDense(const Tensor &dense);

    /**
     * Build from an OIHW filter tensor, flattened to [O, I*KH*KW].
     */
    static CsrMatrix fromFilter(const Tensor &filter);

    /** Expand back to a dense rank-2 tensor [rows, cols]. */
    Tensor toDense() const;

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }

    /** Number of stored non-zeros. */
    size_t nnz() const { return values_.size(); }

    /** Fraction of zero entries in [0, 1]. */
    double sparsity() const;

    /**
     * Total bytes of the CSR representation: values + column indices +
     * row pointers. This is what Table IV's "sparse costs more for 3x3
     * filters" observation is made of.
     */
    size_t storageBytes() const;

    /** Bytes of index metadata only (colIdx + rowPtr). */
    size_t metadataBytes() const;

    /** @name Raw array access for kernels. */
    /** @{ */
    const std::vector<int32_t> &rowPtr() const { return rowPtr_; }
    const std::vector<int32_t> &colIdx() const { return colIdx_; }
    const std::vector<float> &values() const { return values_; }
    /** @} */

    /**
     * Sparse matrix x dense vector: y = A * x.
     *
     * @param x  input, length cols()
     * @param y  output, length rows(); overwritten
     */
    void spmv(const float *x, float *y) const;

    /**
     * Sparse matrix x dense matrix: C = A * B.
     *
     * @param b      row-major dense, cols() x n
     * @param c      row-major dense out, rows() x n; overwritten
     * @param n      columns of B / C
     */
    void spmm(const float *b, float *c, size_t n) const;

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<int32_t> rowPtr_;
    std::vector<int32_t> colIdx_;
    std::vector<float> values_;
    TrackedBytes trackedMeta_;
    TrackedBytes trackedValues_;

    void retrack();
};

} // namespace dlis

#endif // DLIS_SPARSE_CSR_HPP
