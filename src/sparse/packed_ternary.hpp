/**
 * @file
 * Bit-packed ternary weights: 2 bits per weight + 2 float scales.
 *
 * The paper declined this format for its headline results: "Through
 * hashing at the level of bits, the memory requirement for
 * quantisation could be an order of magnitude smaller although the
 * inference time would also increase" (§V-D). We implement it so that
 * trade-off can be measured instead of asserted — see
 * bench/ablation_ternary_packing and the PackedTernary weight format
 * of Conv2d.
 *
 * Encoding per weight: 00 -> 0, 01 -> +Wp, 10 -> -Wn.
 */

#ifndef DLIS_SPARSE_PACKED_TERNARY_HPP
#define DLIS_SPARSE_PACKED_TERNARY_HPP

#include <cstdint>
#include <vector>

#include "core/memory_tracker.hpp"
#include "core/tensor.hpp"

namespace dlis {

/** A 2-bit-per-weight ternary tensor. */
class PackedTernary
{
  public:
    PackedTernary() = default;

    /**
     * Pack a ternary-valued dense tensor. Every element must be one of
     * {0, +wp, -wn} for a single (wp, wn) pair per tensor — i.e. the
     * output of TTQ quantisation.
     */
    static PackedTernary pack(const Tensor &ternaryDense);

    /**
     * Assemble from raw parts, as a deserialiser would. No validation
     * is performed here — run analysis::verifyPackedTernary on the
     * result before letting a kernel decode it.
     */
    static PackedTernary fromRaw(Shape shape,
                                 std::vector<uint8_t> words, float wp,
                                 float wn);

    /** Original tensor shape. */
    const Shape &shape() const { return shape_; }

    /** Per-layer positive / negative scales. */
    float wp() const { return wp_; }
    float wn() const { return wn_; }

    /** Decode element @p i back to its float value. */
    float
    decode(size_t i) const
    {
        const uint8_t code =
            (words_[i >> 2] >> ((i & 3) * 2)) & 0x3;
        // Branch-free-ish decode: code 1 -> +wp, code 2 -> -wn.
        return code == 1 ? wp_ : (code == 2 ? -wn_ : 0.0f);
    }

    /** Raw 2-bit code of element @p i (0b11 is reserved). */
    uint8_t
    code(size_t i) const
    {
        return (words_[i >> 2] >> ((i & 3) * 2)) & 0x3;
    }

    /** The packed code words (4 codes per byte). */
    const std::vector<uint8_t> &words() const { return words_; }

    /** Expand back to a dense tensor. */
    Tensor toDense() const;

    /** Total elements. */
    size_t numel() const { return count_; }

    /** Storage bytes: ceil(2 bits * numel / 8) + the two scales. */
    size_t storageBytes() const;

    /** Fraction of zero codes. */
    double sparsity() const;

  private:
    Shape shape_;
    size_t count_ = 0;
    std::vector<uint8_t> words_; //!< 4 codes per byte
    float wp_ = 0.0f;
    float wn_ = 0.0f;
    TrackedBytes tracked_;
};

} // namespace dlis

#endif // DLIS_SPARSE_PACKED_TERNARY_HPP
