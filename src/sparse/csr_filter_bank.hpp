/**
 * @file
 * Per-slice CSR storage for convolution filter banks.
 *
 * The paper stores each kh x kw filter slice as its *own* CSR matrix:
 * "in dense format the matrix is an array of 9 floating point elements
 * for the 3x3 filter, while in CSR format there are 3 arrays holding
 * the column offset, pointer to value on columns and the actual
 * non-zero values, with additional parameters to account for the size
 * of arrays" (§V-D). For 3x3 (and especially 1x1) filters this
 * *increases* memory versus dense — the observation behind Table IV —
 * so reproducing it requires this exact representation, not a single
 * flat CSR over the whole filter bank.
 *
 * Layout per (out-channel, in-channel) slice:
 *   rowPtr[kh + 1] int32, colIdx[nnz] int32, values[nnz] float,
 *   plus two int32 size parameters (rows, nnz).
 */

#ifndef DLIS_SPARSE_CSR_FILTER_BANK_HPP
#define DLIS_SPARSE_CSR_FILTER_BANK_HPP

#include <cstdint>
#include <vector>

#include "core/memory_tracker.hpp"
#include "core/tensor.hpp"

namespace dlis {

/** One kh x kw filter slice in CSR form. */
struct CsrSlice
{
    std::vector<int32_t> rowPtr; //!< kh + 1 entries
    std::vector<int32_t> colIdx; //!< nnz entries
    std::vector<float> values;   //!< nnz entries

    /** Non-zeros in this slice. */
    size_t nnz() const { return values.size(); }
};

/** All (cout x cin) slices of one convolution's filters. */
class CsrFilterBank
{
  public:
    CsrFilterBank() = default;

    /** Build from a dense OIHW filter tensor, dropping exact zeros. */
    static CsrFilterBank fromFilter(const Tensor &oihw);

    /**
     * Assemble from raw slices, as a deserialiser would. @p slices is
     * cout*cin entries in (oc, ci) row-major order. No validation is
     * performed here — run analysis::verifyCsrFilterBank on the result
     * before letting a kernel walk it.
     */
    static CsrFilterBank fromRaw(size_t cout, size_t cin, size_t kh,
                                 size_t kw,
                                 std::vector<CsrSlice> slices);

    /** Expand back to the dense OIHW tensor. */
    Tensor toDense() const;

    size_t outChannels() const { return cout_; }
    size_t inChannels() const { return cin_; }
    size_t kernelH() const { return kh_; }
    size_t kernelW() const { return kw_; }

    /** Slice for (out-channel, in-channel). */
    const CsrSlice &
    slice(size_t oc, size_t ci) const
    {
        return slices_[oc * cin_ + ci];
    }

    /** Total non-zeros across all slices. */
    size_t nnz() const;

    /** Fraction of zero weights in [0, 1]. */
    double sparsity() const;

    /**
     * Total bytes of this representation: values + column indices +
     * row pointers + the per-slice size parameters. Compare with
     * cout*cin*kh*kw*4 for dense.
     */
    size_t storageBytes() const;

    /** Bytes of index/size metadata only. */
    size_t metadataBytes() const;

    /**
     * Extra bookkeeping bytes charged per slice: the three array
     * pointers (rowPtr, colIdx, values) plus the two size parameters
     * the paper mentions, at the 32-bit ARM target's pointer width.
     * This constant reproduces the paper's Table IV deltas: with it,
     * weight pruning costs +29/+12/+98 MB over dense for
     * VGG/ResNet/MobileNet (paper: +33/+10/+119 MB).
     */
    static constexpr size_t perSliceOverheadBytes =
        3 * sizeof(int32_t) + 2 * sizeof(int32_t);

  private:
    size_t cout_ = 0, cin_ = 0, kh_ = 0, kw_ = 0;
    std::vector<CsrSlice> slices_;
    TrackedBytes trackedMeta_;
    TrackedBytes trackedValues_;
};

} // namespace dlis

#endif // DLIS_SPARSE_CSR_FILTER_BANK_HPP
