#include "sparse/csr_filter_bank.hpp"

#include "core/error.hpp"

namespace dlis {

CsrFilterBank
CsrFilterBank::fromFilter(const Tensor &oihw)
{
    DLIS_CHECK(oihw.shape().rank() == 4,
               "filter bank needs an OIHW tensor, got ",
               oihw.shape().str());
    const auto &d = oihw.shape().dims();

    CsrFilterBank bank;
    bank.cout_ = d[0];
    bank.cin_ = d[1];
    bank.kh_ = d[2];
    bank.kw_ = d[3];
    bank.slices_.resize(bank.cout_ * bank.cin_);

    const size_t kk = bank.kh_ * bank.kw_;
    for (size_t oc = 0; oc < bank.cout_; ++oc) {
        for (size_t ci = 0; ci < bank.cin_; ++ci) {
            const float *w = oihw.data() + (oc * bank.cin_ + ci) * kk;
            CsrSlice &s = bank.slices_[oc * bank.cin_ + ci];
            s.rowPtr.reserve(bank.kh_ + 1);
            s.rowPtr.push_back(0);
            for (size_t ky = 0; ky < bank.kh_; ++ky) {
                for (size_t kx = 0; kx < bank.kw_; ++kx) {
                    const float v = w[ky * bank.kw_ + kx];
                    if (v != 0.0f) {
                        s.colIdx.push_back(static_cast<int32_t>(kx));
                        s.values.push_back(v);
                    }
                }
                s.rowPtr.push_back(
                    static_cast<int32_t>(s.values.size()));
            }
        }
    }
    bank.trackedValues_ =
        TrackedBytes(MemClass::Weights, bank.nnz() * sizeof(float));
    bank.trackedMeta_ =
        TrackedBytes(MemClass::SparseMeta, bank.metadataBytes());
    return bank;
}

CsrFilterBank
CsrFilterBank::fromRaw(size_t cout, size_t cin, size_t kh, size_t kw,
                       std::vector<CsrSlice> slices)
{
    DLIS_CHECK(slices.size() == cout * cin, "expected ", cout * cin,
               " slices, got ", slices.size());
    CsrFilterBank bank;
    bank.cout_ = cout;
    bank.cin_ = cin;
    bank.kh_ = kh;
    bank.kw_ = kw;
    bank.slices_ = std::move(slices);
    bank.trackedValues_ =
        TrackedBytes(MemClass::Weights, bank.nnz() * sizeof(float));
    bank.trackedMeta_ =
        TrackedBytes(MemClass::SparseMeta, bank.metadataBytes());
    return bank;
}

Tensor
CsrFilterBank::toDense() const
{
    Tensor out(Shape{cout_, cin_, kh_, kw_}, MemClass::Weights);
    const size_t kk = kh_ * kw_;
    for (size_t oc = 0; oc < cout_; ++oc) {
        for (size_t ci = 0; ci < cin_; ++ci) {
            const CsrSlice &s = slices_[oc * cin_ + ci];
            float *w = out.data() + (oc * cin_ + ci) * kk;
            for (size_t ky = 0; ky < kh_; ++ky) {
                for (int32_t k = s.rowPtr[ky]; k < s.rowPtr[ky + 1];
                     ++k) {
                    w[ky * kw_ + static_cast<size_t>(s.colIdx[k])] =
                        s.values[k];
                }
            }
        }
    }
    return out;
}

size_t
CsrFilterBank::nnz() const
{
    size_t total = 0;
    for (const auto &s : slices_)
        total += s.nnz();
    return total;
}

double
CsrFilterBank::sparsity() const
{
    const size_t total = cout_ * cin_ * kh_ * kw_;
    if (total == 0)
        return 0.0;
    return 1.0 - static_cast<double>(nnz()) / static_cast<double>(total);
}

size_t
CsrFilterBank::storageBytes() const
{
    return nnz() * sizeof(float) + metadataBytes();
}

size_t
CsrFilterBank::metadataBytes() const
{
    size_t bytes = 0;
    for (const auto &s : slices_) {
        bytes += s.rowPtr.size() * sizeof(int32_t) +
                 s.colIdx.size() * sizeof(int32_t) +
                 perSliceOverheadBytes;
    }
    return bytes;
}

} // namespace dlis
