#include "sparse/ternary.hpp"

#include <cmath>

#include "core/error.hpp"

namespace dlis {

TernaryWeights
TernaryWeights::quantise(const Tensor &dense, double threshold)
{
    DLIS_CHECK(threshold >= 0.0 && threshold <= 1.0,
               "TTQ threshold must be in [0, 1], got ", threshold);
    TernaryWeights t;
    t.shape_ = dense.shape();
    t.signs_.resize(dense.numel());

    float max_abs = 0.0f;
    for (size_t i = 0; i < dense.numel(); ++i)
        max_abs = std::max(max_abs, std::fabs(dense[i]));

    const float cut = static_cast<float>(threshold) * max_abs;
    double pos_sum = 0.0, neg_sum = 0.0;
    for (size_t i = 0; i < dense.numel(); ++i) {
        const float v = dense[i];
        if (v > cut) {
            t.signs_[i] = 1;
            ++t.posCount_;
            pos_sum += v;
        } else if (v < -cut) {
            t.signs_[i] = -1;
            ++t.negCount_;
            neg_sum += -v;
        } else {
            t.signs_[i] = 0;
        }
    }
    // TTQ initialises the scales to the mean magnitude of the retained
    // weights; training fine-tunes them afterwards.
    t.wp_ = t.posCount_ ? static_cast<float>(pos_sum / t.posCount_) : 0.0f;
    t.wn_ = t.negCount_ ? static_cast<float>(neg_sum / t.negCount_) : 0.0f;
    t.tracked_ = TrackedBytes(MemClass::Weights,
                              t.signs_.size() * sizeof(int8_t));
    return t;
}

void
TernaryWeights::setScales(float wp, float wn)
{
    DLIS_CHECK(wp >= 0.0f && wn >= 0.0f,
               "TTQ scales must be non-negative, got wp=", wp, " wn=", wn);
    wp_ = wp;
    wn_ = wn;
}

double
TernaryWeights::sparsity() const
{
    if (signs_.empty())
        return 0.0;
    const size_t zeros = signs_.size() - posCount_ - negCount_;
    return static_cast<double>(zeros) /
           static_cast<double>(signs_.size());
}

Tensor
TernaryWeights::toDense() const
{
    Tensor out(shape_, MemClass::Weights);
    for (size_t i = 0; i < signs_.size(); ++i) {
        if (signs_[i] > 0)
            out[i] = wp_;
        else if (signs_[i] < 0)
            out[i] = -wn_;
    }
    return out;
}

CsrMatrix
TernaryWeights::toCsr() const
{
    const Tensor dense = toDense();
    const size_t rows = shape_.rank() ? shape_[0] : 1;
    const size_t cols = rows ? dense.numel() / rows : 0;
    return CsrMatrix::fromDense(dense.data(), rows, cols);
}

size_t
TernaryWeights::csrBytes() const
{
    // nnz * (value + colIdx) + (rows + 1) * rowPtr
    const size_t nnz = posCount_ + negCount_;
    const size_t rows = shape_.rank() ? shape_[0] : 1;
    return nnz * (sizeof(float) + sizeof(int32_t)) +
           (rows + 1) * sizeof(int32_t);
}

size_t
TernaryWeights::packedBytes() const
{
    // 2 bits per weight, rounded up, plus the two float scales.
    return (signs_.size() * 2 + 7) / 8 + 2 * sizeof(float);
}

} // namespace dlis
