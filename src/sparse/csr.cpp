#include "sparse/csr.hpp"

#include "core/error.hpp"

namespace dlis {

CsrMatrix
CsrMatrix::fromDense(const float *dense, size_t rows, size_t cols)
{
    CsrMatrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.rowPtr_.reserve(rows + 1);
    m.rowPtr_.push_back(0);
    for (size_t r = 0; r < rows; ++r) {
        for (size_t c = 0; c < cols; ++c) {
            const float v = dense[r * cols + c];
            if (v != 0.0f) {
                m.colIdx_.push_back(static_cast<int32_t>(c));
                m.values_.push_back(v);
            }
        }
        m.rowPtr_.push_back(static_cast<int32_t>(m.values_.size()));
    }
    m.retrack();
    return m;
}

CsrMatrix
CsrMatrix::fromDense(const Tensor &dense)
{
    DLIS_CHECK(dense.shape().rank() == 2,
               "fromDense needs a rank-2 tensor, got ",
               dense.shape().str());
    return fromDense(dense.data(), dense.shape()[0], dense.shape()[1]);
}

CsrMatrix
CsrMatrix::fromFilter(const Tensor &filter)
{
    DLIS_CHECK(filter.shape().rank() == 4,
               "fromFilter needs an OIHW tensor, got ",
               filter.shape().str());
    const auto &d = filter.shape().dims();
    return fromDense(filter.data(), d[0], d[1] * d[2] * d[3]);
}

Tensor
CsrMatrix::toDense() const
{
    Tensor out(Shape{rows_, cols_}, MemClass::Weights);
    for (size_t r = 0; r < rows_; ++r) {
        for (int32_t k = rowPtr_[r]; k < rowPtr_[r + 1]; ++k)
            out[r * cols_ + static_cast<size_t>(colIdx_[k])] = values_[k];
    }
    return out;
}

double
CsrMatrix::sparsity() const
{
    const size_t total = rows_ * cols_;
    if (total == 0)
        return 0.0;
    return 1.0 - static_cast<double>(nnz()) / static_cast<double>(total);
}

size_t
CsrMatrix::storageBytes() const
{
    return values_.size() * sizeof(float) + metadataBytes();
}

size_t
CsrMatrix::metadataBytes() const
{
    return colIdx_.size() * sizeof(int32_t) +
           rowPtr_.size() * sizeof(int32_t);
}

void
CsrMatrix::spmv(const float *x, float *y) const
{
    for (size_t r = 0; r < rows_; ++r) {
        float acc = 0.0f;
        for (int32_t k = rowPtr_[r]; k < rowPtr_[r + 1]; ++k)
            acc += values_[k] * x[colIdx_[k]];
        y[r] = acc;
    }
}

void
CsrMatrix::spmm(const float *b, float *c, size_t n) const
{
    for (size_t r = 0; r < rows_; ++r) {
        float *crow = c + r * n;
        for (size_t j = 0; j < n; ++j)
            crow[j] = 0.0f;
        for (int32_t k = rowPtr_[r]; k < rowPtr_[r + 1]; ++k) {
            const float v = values_[k];
            const float *brow =
                b + static_cast<size_t>(colIdx_[k]) * n;
            for (size_t j = 0; j < n; ++j)
                crow[j] += v * brow[j];
        }
    }
}

void
CsrMatrix::retrack()
{
    trackedMeta_ = TrackedBytes(MemClass::SparseMeta, metadataBytes());
    trackedValues_ =
        TrackedBytes(MemClass::Weights, values_.size() * sizeof(float));
}

} // namespace dlis
