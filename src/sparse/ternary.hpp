/**
 * @file
 * Trained Ternary Quantisation (TTQ) weight format.
 *
 * After TTQ (Zhu et al., ICLR 2017), every weight in a layer is one of
 * {-Wn, 0, +Wp} with per-layer learned scales Wp, Wn. The paper stores
 * these in CSR with full float values (deliberately NOT bit-packing —
 * §V-D notes packing would shrink memory an order of magnitude but slow
 * inference). We implement both:
 *
 *  - the paper's representation: a CsrMatrix whose values are ±scales
 *    (used by all headline experiments), and
 *  - a compact 2-bit packed form (extension) with exact byte accounting
 *    so the packing trade-off the paper mentions can be benchmarked.
 */

#ifndef DLIS_SPARSE_TERNARY_HPP
#define DLIS_SPARSE_TERNARY_HPP

#include <cstdint>
#include <vector>

#include "core/memory_tracker.hpp"
#include "core/tensor.hpp"
#include "sparse/csr.hpp"

namespace dlis {

/**
 * Ternary-quantised weights for one layer.
 *
 * Holds the per-layer positive/negative scales and the sign pattern.
 */
class TernaryWeights
{
  public:
    TernaryWeights() = default;

    /**
     * Quantise a dense weight tensor with TTQ's threshold rule:
     * |w| <= t * max|w| -> 0, w > t*max|w| -> +Wp, w < -t*max|w| -> -Wn.
     * Wp / Wn default to the mean magnitude of the weights they replace
     * (the TTQ initialisation; training may adjust them afterwards).
     *
     * @param dense      weights of any rank (flattened internally)
     * @param threshold  the TTQ threshold hyper-parameter t in [0, 1]
     */
    static TernaryWeights quantise(const Tensor &dense, double threshold);

    /** Per-layer positive scale Wp. */
    float wp() const { return wp_; }

    /** Per-layer negative scale Wn (stored positive; weight is -Wn). */
    float wn() const { return wn_; }

    /** Override the learned scales (used by TTQ training). */
    void setScales(float wp, float wn);

    /** Shape of the original dense tensor. */
    const Shape &shape() const { return shape_; }

    /** Fraction of zeroed weights in [0, 1]. */
    double sparsity() const;

    /** Expand to a dense tensor of the original shape. */
    Tensor toDense() const;

    /**
     * Render as CSR (the paper's inference representation): one row per
     * output channel (dim 0), values in {+Wp, -Wn}.
     */
    CsrMatrix toCsr() const;

    /** Bytes of the paper's CSR representation. */
    size_t csrBytes() const;

    /**
     * Bytes of the compact 2-bit packed form: 2 bits/weight + 2 floats.
     * This is the order-of-magnitude smaller option the paper declined.
     */
    size_t packedBytes() const;

    /** Number of +Wp weights. */
    size_t positiveCount() const { return posCount_; }

    /** Number of -Wn weights. */
    size_t negativeCount() const { return negCount_; }

    /** Signs of every weight, flattened: -1, 0, +1. */
    const std::vector<int8_t> &signs() const { return signs_; }

  private:
    Shape shape_;
    std::vector<int8_t> signs_;
    float wp_ = 0.0f;
    float wn_ = 0.0f;
    size_t posCount_ = 0;
    size_t negCount_ = 0;
    TrackedBytes tracked_;
};

} // namespace dlis

#endif // DLIS_SPARSE_TERNARY_HPP
