/**
 * @file
 * Error-handling primitives for the dlis library.
 *
 * Follows the gem5 fatal/panic split:
 *  - FatalError (dlis::fatal) — the *user's* fault: bad configuration,
 *    shape mismatch from caller input, invalid arguments.
 *  - PanicError (dlis::panic) — a library bug: internal invariant that
 *    should never fail regardless of what the user does.
 */

#ifndef DLIS_CORE_ERROR_HPP
#define DLIS_CORE_ERROR_HPP

#include <sstream>
#include <stdexcept>
#include <string>

namespace dlis {

/** Raised for user-caused errors (bad config, invalid arguments). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error("fatal: " + msg)
    {}
};

/** Raised for internal invariant violations (library bugs). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error("panic: " + msg)
    {}
};

/** Throw a FatalError built from streamable parts. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    throw FatalError(oss.str());
}

/** Throw a PanicError built from streamable parts. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    throw PanicError(oss.str());
}

} // namespace dlis

/** Check a user-facing precondition; throws FatalError on failure. */
#define DLIS_CHECK(cond, ...)                                               \
    do {                                                                    \
        if (!(cond))                                                        \
            ::dlis::fatal("check failed: ", #cond, " — ", __VA_ARGS__);     \
    } while (0)

/** Check an internal invariant; throws PanicError on failure. */
#define DLIS_ASSERT(cond, ...)                                              \
    do {                                                                    \
        if (!(cond))                                                        \
            ::dlis::panic("assert failed: ", #cond, " — ", __VA_ARGS__);    \
    } while (0)

#endif // DLIS_CORE_ERROR_HPP
