/**
 * @file
 * Minimal status-message logging (inform/warn), gem5-style.
 *
 * Logging never stops execution; it exists purely to surface status to
 * the user. Verbosity is controlled globally so benches can silence it.
 */

#ifndef DLIS_CORE_LOGGING_HPP
#define DLIS_CORE_LOGGING_HPP

#include <sstream>
#include <string>

namespace dlis {

/** Verbosity levels, in increasing order of chattiness. */
enum class LogLevel { Silent = 0, Warn = 1, Inform = 2 };

/** Set the global log level. Thread-safe (atomic store). */
void setLogLevel(LogLevel level);

/** Current global log level. */
LogLevel logLevel();

namespace detail {
void logLine(LogLevel level, const std::string &msg);
} // namespace detail

/** Emit an informational status message (level Inform). */
template <typename... Args>
void
inform(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    detail::logLine(LogLevel::Inform, oss.str());
}

/** Emit a warning about questionable-but-survivable conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    detail::logLine(LogLevel::Warn, oss.str());
}

} // namespace dlis

#endif // DLIS_CORE_LOGGING_HPP
