/**
 * @file
 * Tensor shape algebra.
 *
 * Shapes are small vectors of dimensions; CNN activations use the NCHW
 * convention (batch, channels, height, width) and convolution filters use
 * OIHW (out-channels, in-channels, kernel-h, kernel-w).
 */

#ifndef DLIS_CORE_SHAPE_HPP
#define DLIS_CORE_SHAPE_HPP

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace dlis {

/** An n-dimensional tensor shape with NCHW/OIHW helpers. */
class Shape
{
  public:
    Shape() = default;

    /** Construct from an explicit dimension list, e.g. {n, c, h, w}. */
    Shape(std::initializer_list<size_t> dims);

    /** Construct from a vector of dimensions. */
    explicit Shape(std::vector<size_t> dims);

    /** Number of dimensions. */
    size_t rank() const { return dims_.size(); }

    /** Dimension at index i. @pre i < rank(). */
    size_t dim(size_t i) const;

    /** Dimension at index i (unchecked operator form). */
    size_t operator[](size_t i) const { return dims_[i]; }

    /** Total number of elements (product of dims; 1 for rank 0). */
    size_t numel() const;

    /** True when every dimension matches. */
    bool operator==(const Shape &other) const = default;

    /** Human-readable form, e.g. "[1, 64, 32, 32]". */
    std::string str() const;

    /** @name NCHW accessors (require rank 4). */
    /** @{ */
    size_t n() const { return dim4(0); }
    size_t c() const { return dim4(1); }
    size_t h() const { return dim4(2); }
    size_t w() const { return dim4(3); }
    /** @} */

    const std::vector<size_t> &dims() const { return dims_; }

  private:
    size_t dim4(size_t i) const;

    std::vector<size_t> dims_;
};

/** Stream a shape in its str() form. */
std::ostream &operator<<(std::ostream &os, const Shape &s);

} // namespace dlis

#endif // DLIS_CORE_SHAPE_HPP
