#include "core/shape.hpp"

#include <ostream>
#include <sstream>

#include "core/error.hpp"

namespace dlis {

Shape::Shape(std::initializer_list<size_t> dims)
    : dims_(dims)
{}

Shape::Shape(std::vector<size_t> dims)
    : dims_(std::move(dims))
{}

size_t
Shape::dim(size_t i) const
{
    DLIS_CHECK(i < dims_.size(),
               "dim index ", i, " out of range for rank ", dims_.size());
    return dims_[i];
}

size_t
Shape::numel() const
{
    size_t n = 1;
    for (size_t d : dims_)
        n *= d;
    return n;
}

std::string
Shape::str() const
{
    std::ostringstream oss;
    oss << '[';
    for (size_t i = 0; i < dims_.size(); ++i) {
        if (i)
            oss << ", ";
        oss << dims_[i];
    }
    oss << ']';
    return oss.str();
}

size_t
Shape::dim4(size_t i) const
{
    DLIS_CHECK(dims_.size() == 4,
               "NCHW accessor used on rank-", dims_.size(), " shape ",
               str());
    return dims_[i];
}

std::ostream &
operator<<(std::ostream &os, const Shape &s)
{
    return os << s.str();
}

} // namespace dlis
