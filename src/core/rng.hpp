/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Everything in dlis that needs randomness (weight init, synthetic data,
 * augmentation crops, the GEMM auto-tuner's search) draws from an Rng
 * instance seeded explicitly, so every experiment is reproducible
 * bit-for-bit across runs. The generator is xoshiro256** seeded via
 * splitmix64, chosen for speed and well-studied statistical quality.
 */

#ifndef DLIS_CORE_RNG_HPP
#define DLIS_CORE_RNG_HPP

#include <cstdint>

namespace dlis {

/**
 * A small, fast, deterministic random number generator
 * (xoshiro256** with splitmix64 seeding).
 */
class Rng
{
  public:
    /** Construct with an explicit seed; same seed => same stream. */
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

    /**
     * Construct stream @p streamId of @p seed: a splitmix-style
     * derivation (the stream id is passed through the splitmix64
     * finaliser and folded into the seed) that gives every worker its
     * own statistically independent stream from one experiment seed,
     * with no shared generator state between workers. Stream 0 is
     * bit-identical to Rng(seed), so existing single-stream
     * experiments reproduce unchanged.
     */
    Rng(uint64_t seed, uint64_t streamId);

    /** Next raw 64-bit value. */
    uint64_t nextU64();

    /** Uniform in [0, 1). */
    double uniform();

    /** Uniform in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0. */
    uint64_t uniformInt(uint64_t n);

    /** Standard normal via Box–Muller (cached second value). */
    double normal();

    /** Normal with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Bernoulli draw with probability p of true. */
    bool bernoulli(double p);

    /**
     * Split off an independent child stream (for parallel use).
     * Children are Rng(base, 1), Rng(base, 2), ... of this
     * generator's seeding base: derivation consumes no draws, so
     * splitting never perturbs the parent's own sequence (it used to
     * draw from the shared state, which made a stream's values depend
     * on how many children had been split off before each draw).
     */
    Rng split();

  private:
    uint64_t state_[4];
    uint64_t streamBase_;  //!< seeding base (seed + finalised stream id)
    uint64_t splitCount_ = 0; //!< child streams handed out so far
    double cachedNormal_;
    bool hasCachedNormal_;
};

} // namespace dlis

#endif // DLIS_CORE_RNG_HPP
