/**
 * @file
 * Dense float tensor in NCHW layout.
 *
 * The Tensor is the universal currency of the library: activations,
 * weights, gradients, and im2col buffers are all Tensors. Storage is a
 * contiguous row-major float buffer; every allocation is registered with
 * the MemoryTracker so the paper's memory-footprint tables can be
 * reproduced exactly.
 */

#ifndef DLIS_CORE_TENSOR_HPP
#define DLIS_CORE_TENSOR_HPP

#include <vector>

#include "core/error.hpp"
#include "core/memory_tracker.hpp"
#include "core/rng.hpp"
#include "core/shape.hpp"

namespace dlis {

/** A dense float tensor with tracked storage. */
class Tensor
{
  public:
    /** An empty tensor (rank 0, no storage). */
    Tensor() = default;

    /** Zero-initialised tensor of the given shape. */
    explicit Tensor(Shape shape, MemClass mc = MemClass::Activations);

    Tensor(const Tensor &other);
    Tensor &operator=(const Tensor &other);
    Tensor(Tensor &&) noexcept = default;
    Tensor &operator=(Tensor &&) noexcept = default;

    /** The tensor's shape. */
    const Shape &shape() const { return shape_; }

    /** Total element count. */
    size_t numel() const { return data_.size(); }

    /** Bytes of dense payload (numel * sizeof(float)). */
    size_t bytes() const { return data_.size() * sizeof(float); }

    /** Raw storage pointers. */
    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    /** Flat element access (checked). */
    float &at(size_t i);
    float at(size_t i) const;

    /** Flat element access (unchecked). */
    float &operator[](size_t i) { return data_[i]; }
    float operator[](size_t i) const { return data_[i]; }

    /** 4-D NCHW element access (unchecked except in debug builds). */
    float &
    at4(size_t n, size_t c, size_t h, size_t w)
    {
        return data_[offset4(n, c, h, w)];
    }

    /** 4-D NCHW element access, const. */
    float
    at4(size_t n, size_t c, size_t h, size_t w) const
    {
        return data_[offset4(n, c, h, w)];
    }

    /** Flat offset of an NCHW coordinate. */
    size_t
    offset4(size_t n, size_t c, size_t h, size_t w) const
    {
        const auto &d = shape_.dims();
        return ((n * d[1] + c) * d[2] + h) * d[3] + w;
    }

    /** Set every element to @p value. */
    void fill(float value);

    /** Fill with N(mean, stddev) draws from @p rng. */
    void fillNormal(Rng &rng, float mean, float stddev);

    /** Fill with U[lo, hi) draws from @p rng. */
    void fillUniform(Rng &rng, float lo, float hi);

    /** Kaiming-He init for a conv/fc weight (fan-in from shape). */
    void fillKaiming(Rng &rng);

    /** Reinterpret as a new shape with identical numel. */
    Tensor reshaped(Shape newShape) const;

    /** Number of zero-valued elements. */
    size_t countZeros() const;

    /** Fraction of zero-valued elements in [0, 1]. */
    double sparsity() const;

    /** Elementwise a += b. Shapes must match. */
    void addInPlace(const Tensor &other);

    /** Elementwise scale by @p s. */
    void scaleInPlace(float s);

    /** Max absolute difference against @p other (shapes must match). */
    float maxAbsDiff(const Tensor &other) const;

    /** Sum of all elements. */
    double sum() const;

    /** True when shape and every element match exactly. */
    bool operator==(const Tensor &other) const;

  private:
    Shape shape_;
    std::vector<float> data_;
    TrackedBytes tracked_;
    MemClass memClass_ = MemClass::Activations;
};

} // namespace dlis

#endif // DLIS_CORE_TENSOR_HPP
