/**
 * @file
 * Byte-exact runtime memory accounting.
 *
 * The paper's Tables IV and VI report memory footprints per model and
 * compression technique; those numbers are "predominantly influenced by
 * the network parameters being available in memory, input and output
 * buffers and intermediate allocation for padding input" (§V-D). To
 * reproduce them from first principles, every Tensor and sparse matrix
 * registers its allocation here under a category, and the benches query
 * the per-category and total high-water marks.
 */

#ifndef DLIS_CORE_MEMORY_TRACKER_HPP
#define DLIS_CORE_MEMORY_TRACKER_HPP

#include <cstddef>
#include <map>
#include <mutex>
#include <string>

namespace dlis {

/** What an allocation is used for; drives the footprint breakdown. */
enum class MemClass
{
    Weights,        //!< model parameters (dense payload)
    SparseMeta,     //!< CSR/ternary index + pointer arrays
    Activations,    //!< layer input/output buffers
    Scratch,        //!< im2col buffers, padding copies, workspace
    Other,          //!< anything else
};

/** Human-readable name of a MemClass. */
const char *memClassName(MemClass mc);

/**
 * Process-wide allocation ledger.
 *
 * Thread-safe. Tracks current and peak bytes, per MemClass and total.
 * Scoped usage: reset() at the start of an experiment, run one
 * inference, then read peakBytes() — that is the runtime footprint the
 * paper reports.
 */
class MemoryTracker
{
  public:
    /** The single process-wide instance. */
    static MemoryTracker &instance();

    /** Record an allocation of @p bytes in class @p mc. */
    void allocate(MemClass mc, size_t bytes);

    /** Record a deallocation of @p bytes in class @p mc. */
    void release(MemClass mc, size_t bytes);

    /** Currently live bytes across all classes. */
    size_t currentBytes() const;

    /** Peak live bytes since the last reset. */
    size_t peakBytes() const;

    /** Currently live bytes in one class. */
    size_t currentBytes(MemClass mc) const;

    /** Peak live bytes in one class since the last reset. */
    size_t peakBytes(MemClass mc) const;

    /** Zero the peaks (current counts are preserved as the new peaks). */
    void resetPeaks();

    /** One-line footprint summary, e.g. for logs. */
    std::string summary() const;

  private:
    MemoryTracker() = default;

    struct Counter
    {
        size_t current = 0;
        size_t peak = 0;
    };

    mutable std::mutex mutex_;
    std::map<MemClass, Counter> perClass_;
    Counter total_;
};

/**
 * RAII registration of an externally-owned buffer with the tracker.
 * Move-only; releases its bytes on destruction.
 */
class TrackedBytes
{
  public:
    TrackedBytes() = default;

    /** Register @p bytes of class @p mc with the global tracker. */
    TrackedBytes(MemClass mc, size_t bytes);

    TrackedBytes(const TrackedBytes &) = delete;
    TrackedBytes &operator=(const TrackedBytes &) = delete;
    TrackedBytes(TrackedBytes &&other) noexcept;
    TrackedBytes &operator=(TrackedBytes &&other) noexcept;
    ~TrackedBytes();

    /** Change the tracked size (e.g. after a resize). */
    void resize(size_t newBytes);

    size_t bytes() const { return bytes_; }

  private:
    MemClass memClass_ = MemClass::Other;
    size_t bytes_ = 0;
};

} // namespace dlis

#endif // DLIS_CORE_MEMORY_TRACKER_HPP
