/**
 * @file
 * Reusable per-context scratch arena for kernel workspaces.
 *
 * The conv/GEMM hot path used to allocate a fresh im2col column
 * buffer, GEMM packing buffers, and Winograd filter transforms on
 * every forward — thousands of heap allocations per request at
 * steady state. The arena replaces them with one grow-only buffer
 * owned by the ExecContext (one per serving worker): the first
 * forward grows it to the model's high-water scratch demand, and
 * every later forward runs allocation-free.
 *
 * Contract:
 *  - grow-only: capacity never shrinks until destruction, and growth
 *    is *exact* (capacity == the aligned high-water demand), which is
 *    what keeps the static estimate in src/analysis/memory_estimate.cpp
 *    byte-EXACT against the MemoryTracker (the arena registers its
 *    capacity under MemClass::Scratch);
 *  - checkpoint/rewind: a layer takes a Scope at entry and the arena
 *    rewinds to the checkpoint at exit, so per-layer demands overlay
 *    rather than accumulate;
 *  - alignment-aware: every block starts on a kAlignment boundary and
 *    occupies alignUp(bytes), so offsets stay aligned and the demand
 *    of a sequence of allocations is exactly the sum of their aligned
 *    sizes (the mirror the static estimate computes);
 *  - single-consumer: one arena serves one thread of control. Kernels
 *    that parallelise internally carve per-thread slices out of one
 *    block *before* entering the parallel region (see gemmBlocked).
 */

#ifndef DLIS_CORE_SCRATCH_ARENA_HPP
#define DLIS_CORE_SCRATCH_ARENA_HPP

#include <cstddef>
#include <vector>

#include "core/memory_tracker.hpp"
// Header-only counter handles (no link dependency), same leaf-header
// idiom as backend/conv_params.hpp.
#include "obs/counters.hpp"

namespace dlis {

/** Grow-only aligned bump allocator for kernel scratch. */
class ScratchArena
{
  public:
    /** Block alignment; also the granularity of every allocation. */
    static constexpr size_t kAlignment = 64;

    /** @p bytes rounded up to the arena's allocation granularity. */
    static constexpr size_t
    alignUp(size_t bytes)
    {
        return (bytes + kAlignment - 1) / kAlignment * kAlignment;
    }

    ScratchArena() = default;
    ~ScratchArena();

    ScratchArena(const ScratchArena &) = delete;
    ScratchArena &operator=(const ScratchArena &) = delete;

    /**
     * Bump-allocate @p bytes (rounded up to kAlignment). The block is
     * uninitialised — callers overwrite it fully or zero what they
     * need. Valid until the enclosing Scope ends (or rewind()).
     */
    void *alloc(size_t bytes);

    /** alloc() typed for the float workspaces every kernel uses. */
    float *
    allocFloats(size_t count)
    {
        return static_cast<float *>(alloc(count * sizeof(float)));
    }

    /**
     * Ensure capacity for @p bytes more than currently used, in one
     * growth step. Callers that allocate several blocks in a row pass
     * the sum of the aligned sizes so live data is copied at most
     * once.
     */
    void reserve(size_t bytes);

    /** Current offset; pass to rewind() to free everything after. */
    size_t checkpoint() const { return used_; }

    /** Roll the bump pointer back to @p mark (from checkpoint()). */
    void rewind(size_t mark);

    /** Bytes currently allocated out of the arena. */
    size_t usedBytes() const { return used_; }

    /**
     * Bytes owned by the arena: the high-water of usedBytes() so far.
     * This is exactly what the MemoryTracker sees as Scratch.
     */
    size_t capacityBytes() const { return capacity_; }

    /**
     * RAII checkpoint/rewind with optional counter publication: on
     * destruction the arena rewinds to the construction-time mark,
     * `arena_rewinds` counts one, and `arena_bytes` receives the
     * capacity growth this scope caused (zero at steady state — the
     * signal the allocation-regression tests watch).
     */
    class Scope
    {
      public:
        explicit Scope(ScratchArena &arena,
                       const obs::KernelCounters &counters = {})
            : arena_(arena), mark_(arena.checkpoint()),
              capacityAtStart_(arena.capacityBytes()),
              counters_(counters)
        {
        }

        ~Scope()
        {
            arena_.rewind(mark_);
            if (counters_.arenaRewinds)
                counters_.arenaRewinds->add(1);
            if (counters_.arenaBytes &&
                arena_.capacityBytes() > capacityAtStart_)
                counters_.arenaBytes->add(arena_.capacityBytes() -
                                          capacityAtStart_);
        }

        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        ScratchArena &arena_;
        size_t mark_;
        size_t capacityAtStart_;
        obs::KernelCounters counters_;
    };

  private:
    /**
     * Grow to exactly @p newCapacity (aligned), preserving live data.
     * The outgrown buffer is *retired*, not freed: callers hold raw
     * pointers into it across nested kernel calls (e.g. conv's im2col
     * columns are read by the GEMM after the GEMM's own tile
     * allocation grew the arena), so it must stay mapped until the
     * arena fully rewinds to empty — the only point where no
     * outstanding block pointers can exist.
     */
    void grow(size_t newCapacity);

    /** Free every retired buffer (at full rewind or destruction). */
    void freeRetired();

    char *base_ = nullptr;
    size_t used_ = 0;
    size_t capacity_ = 0;
    std::vector<char *> retired_;
    TrackedBytes tracked_{MemClass::Scratch, 0};
};

} // namespace dlis

#endif // DLIS_CORE_SCRATCH_ARENA_HPP
