#include "core/scratch_arena.hpp"

#include <cstring>
#include <new>

#include "core/error.hpp"

namespace dlis {

ScratchArena::~ScratchArena()
{
    freeRetired();
    ::operator delete[](base_, std::align_val_t{kAlignment});
}

void *
ScratchArena::alloc(size_t bytes)
{
    const size_t need = used_ + alignUp(bytes);
    if (need > capacity_)
        grow(need);
    void *p = base_ + used_;
    used_ = need;
    return p;
}

void
ScratchArena::reserve(size_t bytes)
{
    const size_t need = used_ + alignUp(bytes);
    if (need > capacity_)
        grow(need);
}

void
ScratchArena::rewind(size_t mark)
{
    DLIS_ASSERT(mark <= used_,
                "arena rewind past the bump pointer (mark ", mark,
                ", used ", used_, ")");
    used_ = mark;
    // Empty again: the outermost scope closed, so no block pointer can
    // be live any more and the warmup leftovers can go.
    if (used_ == 0 && !retired_.empty())
        freeRetired();
}

void
ScratchArena::grow(size_t newCapacity)
{
    // Exact growth, no geometric headroom: capacity must equal the
    // aligned high-water demand so the static memory estimate can
    // predict the tracker's Scratch peak byte-for-byte. (The tracker
    // counts the arena's capacity; retired warmup buffers are freed at
    // the enclosing full rewind and deliberately not counted.)
    char *fresh = static_cast<char *>(::operator new[](
        newCapacity, std::align_val_t{kAlignment}));
    // Copy the live prefix so blocks keep their offsets; the old
    // buffer is retired (see grow's doc) so pointers taken before the
    // growth also stay valid until the full rewind.
    if (used_ > 0)
        std::memcpy(fresh, base_, used_);
    if (base_)
        retired_.push_back(base_);
    base_ = fresh;
    capacity_ = newCapacity;
    tracked_.resize(capacity_);
}

void
ScratchArena::freeRetired()
{
    for (char *buf : retired_)
        ::operator delete[](buf, std::align_val_t{kAlignment});
    retired_.clear();
}

} // namespace dlis
