#include "core/tensor.hpp"

#include <algorithm>
#include <cmath>

namespace dlis {

Tensor::Tensor(Shape shape, MemClass mc)
    : shape_(std::move(shape)),
      data_(shape_.numel(), 0.0f),
      tracked_(mc, shape_.numel() * sizeof(float)),
      memClass_(mc)
{}

Tensor::Tensor(const Tensor &other)
    : shape_(other.shape_),
      data_(other.data_),
      tracked_(other.memClass_, other.bytes()),
      memClass_(other.memClass_)
{}

Tensor &
Tensor::operator=(const Tensor &other)
{
    if (this != &other) {
        shape_ = other.shape_;
        data_ = other.data_;
        tracked_ = TrackedBytes(other.memClass_, other.bytes());
        memClass_ = other.memClass_;
    }
    return *this;
}

float &
Tensor::at(size_t i)
{
    DLIS_CHECK(i < data_.size(),
               "index ", i, " out of range for ", data_.size(), " elems");
    return data_[i];
}

float
Tensor::at(size_t i) const
{
    DLIS_CHECK(i < data_.size(),
               "index ", i, " out of range for ", data_.size(), " elems");
    return data_[i];
}

void
Tensor::fill(float value)
{
    std::fill(data_.begin(), data_.end(), value);
}

void
Tensor::fillNormal(Rng &rng, float mean, float stddev)
{
    for (auto &v : data_)
        v = static_cast<float>(rng.normal(mean, stddev));
}

void
Tensor::fillUniform(Rng &rng, float lo, float hi)
{
    for (auto &v : data_)
        v = static_cast<float>(rng.uniform(lo, hi));
}

void
Tensor::fillKaiming(Rng &rng)
{
    // Fan-in = product of all dims except the first (output) dim.
    DLIS_CHECK(shape_.rank() >= 2, "Kaiming init needs rank >= 2, got ",
               shape_.str());
    size_t fan_in = 1;
    for (size_t i = 1; i < shape_.rank(); ++i)
        fan_in *= shape_[i];
    const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
    fillNormal(rng, 0.0f, stddev);
}

Tensor
Tensor::reshaped(Shape newShape) const
{
    DLIS_CHECK(newShape.numel() == numel(),
               "reshape ", shape_.str(), " -> ", newShape.str(),
               " changes element count");
    Tensor out(std::move(newShape), memClass_);
    out.data_ = data_;
    return out;
}

size_t
Tensor::countZeros() const
{
    return static_cast<size_t>(
        std::count(data_.begin(), data_.end(), 0.0f));
}

double
Tensor::sparsity() const
{
    if (data_.empty())
        return 0.0;
    return static_cast<double>(countZeros()) /
           static_cast<double>(data_.size());
}

void
Tensor::addInPlace(const Tensor &other)
{
    DLIS_CHECK(shape_ == other.shape_, "addInPlace shape mismatch: ",
               shape_.str(), " vs ", other.shape_.str());
    for (size_t i = 0; i < data_.size(); ++i)
        data_[i] += other.data_[i];
}

void
Tensor::scaleInPlace(float s)
{
    for (auto &v : data_)
        v *= s;
}

float
Tensor::maxAbsDiff(const Tensor &other) const
{
    DLIS_CHECK(shape_ == other.shape_, "maxAbsDiff shape mismatch: ",
               shape_.str(), " vs ", other.shape_.str());
    float worst = 0.0f;
    for (size_t i = 0; i < data_.size(); ++i)
        worst = std::max(worst, std::fabs(data_[i] - other.data_[i]));
    return worst;
}

double
Tensor::sum() const
{
    double acc = 0.0;
    for (float v : data_)
        acc += v;
    return acc;
}

bool
Tensor::operator==(const Tensor &other) const
{
    return shape_ == other.shape_ && data_ == other.data_;
}

} // namespace dlis
