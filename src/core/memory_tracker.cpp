#include "core/memory_tracker.hpp"

#include <sstream>

namespace dlis {

const char *
memClassName(MemClass mc)
{
    switch (mc) {
      case MemClass::Weights:     return "weights";
      case MemClass::SparseMeta:  return "sparse-meta";
      case MemClass::Activations: return "activations";
      case MemClass::Scratch:     return "scratch";
      case MemClass::Other:       return "other";
    }
    return "?";
}

MemoryTracker &
MemoryTracker::instance()
{
    static MemoryTracker tracker;
    return tracker;
}

void
MemoryTracker::allocate(MemClass mc, size_t bytes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &c = perClass_[mc];
    c.current += bytes;
    if (c.current > c.peak)
        c.peak = c.current;
    total_.current += bytes;
    if (total_.current > total_.peak)
        total_.peak = total_.current;
}

void
MemoryTracker::release(MemClass mc, size_t bytes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &c = perClass_[mc];
    c.current = c.current >= bytes ? c.current - bytes : 0;
    total_.current = total_.current >= bytes ? total_.current - bytes : 0;
}

size_t
MemoryTracker::currentBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return total_.current;
}

size_t
MemoryTracker::peakBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return total_.peak;
}

size_t
MemoryTracker::currentBytes(MemClass mc) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = perClass_.find(mc);
    return it == perClass_.end() ? 0 : it->second.current;
}

size_t
MemoryTracker::peakBytes(MemClass mc) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = perClass_.find(mc);
    return it == perClass_.end() ? 0 : it->second.peak;
}

void
MemoryTracker::resetPeaks()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[mc, c] : perClass_)
        c.peak = c.current;
    total_.peak = total_.current;
}

std::string
MemoryTracker::summary() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream oss;
    oss << "mem: total " << total_.current << " B (peak " << total_.peak
        << " B)";
    for (const auto &[mc, c] : perClass_) {
        oss << "; " << memClassName(mc) << ' ' << c.current << " B (peak "
            << c.peak << " B)";
    }
    return oss.str();
}

TrackedBytes::TrackedBytes(MemClass mc, size_t bytes)
    : memClass_(mc), bytes_(bytes)
{
    if (bytes_)
        MemoryTracker::instance().allocate(memClass_, bytes_);
}

TrackedBytes::TrackedBytes(TrackedBytes &&other) noexcept
    : memClass_(other.memClass_), bytes_(other.bytes_)
{
    other.bytes_ = 0;
}

TrackedBytes &
TrackedBytes::operator=(TrackedBytes &&other) noexcept
{
    if (this != &other) {
        if (bytes_)
            MemoryTracker::instance().release(memClass_, bytes_);
        memClass_ = other.memClass_;
        bytes_ = other.bytes_;
        other.bytes_ = 0;
    }
    return *this;
}

TrackedBytes::~TrackedBytes()
{
    if (bytes_)
        MemoryTracker::instance().release(memClass_, bytes_);
}

void
TrackedBytes::resize(size_t newBytes)
{
    auto &tracker = MemoryTracker::instance();
    if (newBytes > bytes_)
        tracker.allocate(memClass_, newBytes - bytes_);
    else if (newBytes < bytes_)
        tracker.release(memClass_, bytes_ - newBytes);
    bytes_ = newBytes;
}

} // namespace dlis
