#include "core/logging.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace dlis {

namespace {

/**
 * Initial verbosity from the DLIS_LOG_LEVEL environment variable:
 * "silent"/"0", "warn"/"1" (the default), or "inform"/"info"/"2".
 * Unrecognised values keep the default so a typo never hides warnings.
 */
LogLevel
levelFromEnv()
{
    const char *env = std::getenv("DLIS_LOG_LEVEL");
    if (!env || !*env)
        return LogLevel::Warn;
    std::string v(env);
    std::transform(v.begin(), v.end(), v.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    if (v == "silent" || v == "0")
        return LogLevel::Silent;
    if (v == "warn" || v == "warning" || v == "1")
        return LogLevel::Warn;
    if (v == "inform" || v == "info" || v == "2")
        return LogLevel::Inform;
    return LogLevel::Warn;
}

std::atomic<LogLevel> globalLevel{levelFromEnv()};
std::mutex outputMutex;

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return globalLevel.load(std::memory_order_relaxed);
}

void
detail::logLine(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) > static_cast<int>(logLevel()))
        return;
    std::lock_guard<std::mutex> lock(outputMutex);
    const char *tag = level == LogLevel::Warn ? "warn: " : "info: ";
    std::cerr << tag << msg << '\n';
}

} // namespace dlis
