#include "core/logging.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace dlis {

namespace {

std::atomic<LogLevel> globalLevel{LogLevel::Warn};
std::mutex outputMutex;

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return globalLevel.load(std::memory_order_relaxed);
}

void
detail::logLine(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) > static_cast<int>(logLevel()))
        return;
    std::lock_guard<std::mutex> lock(outputMutex);
    const char *tag = level == LogLevel::Warn ? "warn: " : "info: ";
    std::cerr << tag << msg << '\n';
}

} // namespace dlis
