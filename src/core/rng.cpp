#include "core/rng.hpp"

#include <cmath>

#include "core/error.hpp"

namespace dlis {

namespace {

/** splitmix64 finaliser (fixed point at 0: mix64(0) == 0). */
uint64_t
mix64(uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

/** splitmix64 step: used only for seeding the main state. */
uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ull;
    return mix64(x);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed) : Rng(seed, 0) {}

Rng::Rng(uint64_t seed, uint64_t streamId)
    : cachedNormal_(0.0), hasCachedNormal_(false)
{
    // Splitmix-style stream derivation: finalise the stream id and
    // fold it into the seed. mix64(0) == 0, so stream 0 seeds exactly
    // like the historical single-stream constructor.
    streamBase_ = seed + mix64(streamId);
    uint64_t sm = streamBase_;
    for (auto &s : state_)
        s = splitmix64(sm);
}

uint64_t
Rng::nextU64()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // Use the top 53 bits for a uniform double in [0, 1).
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Rng::uniformInt(uint64_t n)
{
    DLIS_CHECK(n > 0, "uniformInt needs a positive bound");
    // Rejection sampling to avoid modulo bias.
    const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
    uint64_t v;
    do {
        v = nextU64();
    } while (v >= limit);
    return v % n;
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedNormal_ = r * std::sin(theta);
    hasCachedNormal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

Rng
Rng::split()
{
    // Stream-id derivation instead of drawing from this generator's
    // state: the parent's future sequence is unaffected, and child k
    // is the same stream no matter when it is split off.
    return Rng(streamBase_, ++splitCount_);
}

} // namespace dlis
