#!/usr/bin/env python3
"""Validate Prometheus text exposition format 0.0.4.

Reads metric text from a file argument (or ``-`` / no argument for
stdin) and checks what a scraper would reject:

  * ``# HELP`` / ``# TYPE`` line syntax, known types, and at most one
    of each per family, TYPE before any sample of the family;
  * sample line grammar: ``name{label="value",...} value`` with valid
    metric/label identifiers and properly escaped label values;
  * sample values parse as floats (``+Inf``/``-Inf``/``NaN`` allowed);
  * histogram families: ``le`` buckets are cumulative (monotone
    non-decreasing within one label set) and end with ``+Inf``, and
    the ``+Inf`` bucket count equals ``_count``.

Used by the CI telemetry smoke job on ``curl /metrics`` output, and
handy interactively::

    curl -s http://127.0.0.1:9464/metrics | python3 tools/lint/check_prometheus.py -

Exits nonzero on the first structural violation class found, printing
every offending line.
"""

from __future__ import annotations

import re
import sys

METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
LABEL_NAME = r"[a-zA-Z_][a-zA-Z0-9_]*"
# Label value with \\ \" \n escapes only.
LABEL_VALUE = r'"(?:[^"\\\n]|\\["\\n])*"'
LABEL_PAIR = rf"{LABEL_NAME}={LABEL_VALUE}"
LABEL_BLOCK = rf"\{{{LABEL_PAIR}(?:,{LABEL_PAIR})*\}}"
VALUE = r"(?:[+-]?Inf|NaN|[+-]?[0-9.eE+-]+)"

HELP_RE = re.compile(rf"^# HELP ({METRIC_NAME}) .+$")
TYPE_RE = re.compile(
    rf"^# TYPE ({METRIC_NAME}) "
    r"(counter|gauge|histogram|summary|untyped)$"
)
SAMPLE_RE = re.compile(
    rf"^({METRIC_NAME})({LABEL_BLOCK})? ({VALUE})"
    r"(?: [+-]?[0-9]+)?$"  # optional timestamp
)
LABEL_PAIR_RE = re.compile(rf"({LABEL_NAME})=({LABEL_VALUE})")


def parse_labels(block: str | None) -> dict[str, str]:
    if not block:
        return {}
    return {
        k: v[1:-1] for k, v in LABEL_PAIR_RE.findall(block)
    }


def base_family(name: str) -> str:
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def check(text: str) -> list[str]:
    errors: list[str] = []
    helped: set[str] = set()
    typed: dict[str, str] = {}
    sampled: set[str] = set()
    # (family, frozen non-le labels) -> [(le, count)] in file order.
    buckets: dict[tuple[str, frozenset], list[tuple[float, float]]] = {}
    counts: dict[tuple[str, frozenset], float] = {}

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            if line.startswith("# HELP "):
                m = HELP_RE.match(line)
                if not m:
                    errors.append(f"{lineno}: malformed HELP: {line}")
                    continue
                if m.group(1) in helped:
                    errors.append(
                        f"{lineno}: duplicate HELP for {m.group(1)}"
                    )
                helped.add(m.group(1))
            elif line.startswith("# TYPE "):
                m = TYPE_RE.match(line)
                if not m:
                    errors.append(f"{lineno}: malformed TYPE: {line}")
                    continue
                family = m.group(1)
                if family in typed:
                    errors.append(
                        f"{lineno}: duplicate TYPE for {family}"
                    )
                if family in sampled:
                    errors.append(
                        f"{lineno}: TYPE after samples of {family}"
                    )
                typed[family] = m.group(2)
            # Other comment lines are legal and ignored.
            continue

        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"{lineno}: malformed sample: {line}")
            continue
        name, block, value = m.group(1), m.group(2), m.group(3)
        sampled.add(base_family(name))
        try:
            num = float(value.replace("Inf", "inf").replace("NaN", "nan"))
        except ValueError:
            errors.append(f"{lineno}: bad sample value: {line}")
            continue
        labels = parse_labels(block)
        family = base_family(name)
        if typed.get(family) == "histogram":
            series = frozenset(
                (k, v) for k, v in labels.items() if k != "le"
            )
            if name.endswith("_bucket"):
                le = labels.get("le")
                if le is None:
                    errors.append(
                        f"{lineno}: histogram bucket without le: {line}"
                    )
                    continue
                le_num = float(le.replace("Inf", "inf"))
                buckets.setdefault((family, series), []).append(
                    (le_num, num)
                )
            elif name.endswith("_count"):
                counts[(family, series)] = num

    for (family, series), entries in buckets.items():
        les = [le for le, _ in entries]
        vals = [v for _, v in entries]
        if sorted(les) != les:
            errors.append(f"{family}: le bounds not ascending: {les}")
        if not les or les[-1] != float("inf"):
            errors.append(f"{family}: missing +Inf bucket")
        if sorted(vals) != vals:
            errors.append(
                f"{family}: bucket counts not cumulative: {vals}"
            )
        total = counts.get((family, series))
        if total is not None and vals and vals[-1] != total:
            errors.append(
                f"{family}: +Inf bucket {vals[-1]} != _count {total}"
            )
    return errors


def main(argv: list[str]) -> int:
    if argv and argv[0] not in ("-",):
        with open(argv[0], encoding="utf-8") as fh:
            text = fh.read()
    else:
        text = sys.stdin.read()
    errors = check(text)
    for e in errors:
        print(e, file=sys.stderr)
    lines = sum(1 for l in text.splitlines() if l.strip())
    print(
        f"check_prometheus: {lines} lines, {len(errors)} error(s)",
        file=sys.stderr,
    )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
