#!/usr/bin/env python3
"""dlis project lint: enforce project-specific C++ rules.

clang-tidy covers generic bug classes; this tool enforces the rules
that are *policy* in this repository and that no off-the-shelf check
expresses:

  raw-assert       No raw ``assert()`` / ``abort()`` (or <cassert>):
                   failures must throw through DLIS_CHECK (user error,
                   FatalError) or DLIS_ASSERT (library bug, PanicError)
                   so tests and the serving engine can observe them.
  nondeterminism   No ``rand()``/``srand()``/``time()``/
                   ``std::random_device`` outside src/core/rng.*: every
                   experiment must be reproducible from a seed.
  naked-new        No naked ``new``: ownership goes through
                   std::make_unique / containers.
  kernel-heap-alloc
                   No ``std::vector<float>`` workspaces in src/backend/
                   kernels: per-call heap buffers are the allocation
                   churn the ScratchArena removed — take the workspace
                   from KernelPolicy::arena instead (see
                   src/core/scratch_arena.hpp).
  serve-atomic     No ``std::atomic`` definitions in src/serve/:
                   serving metrics belong in the central
                   obs::MetricsRegistry (src/obs/registry.hpp) so they
                   are scrapeable and windowed, not scattered ad-hoc
                   counters. Lifecycle flags (stop/accepting bits) may
                   stay atomics with a justified same-line
                   ``dlis-lint: allow(serve-atomic)``.
  simd-intrinsics  No raw SIMD intrinsics (``<immintrin.h>``,
                   ``<arm_neon.h>``, ``_mm*``/``v*q_f32`` calls)
                   outside src/backend/simd/: vector code goes through
                   the dispatch layer (simd::activeKernels()) so every
                   call site keeps a scalar reference path and the
                   binary stays runnable on any host.
  float-sentinel   No ``std::numeric_limits<float>`` sentinel
                   comparisons outside src/analysis/: hand-rolled
                   max()/infinity()/lowest() range checks are how
                   overflow bugs hide (float max compared against a
                   double, infinity() used where a NaN slips past).
                   Ask the interval layer instead —
                   analysis::overflowsFloat() / isFiniteValue() /
                   analysis::kFloatMax (src/analysis/interval.hpp).

Suppress a finding with a same-line comment::

    legacy_call();  // dlis-lint: allow(raw-assert)

Usage::

    python3 tools/lint/dlis_lint.py [path ...]   # default: src

Exits nonzero if any violation is found, printing file:line: [rule].
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

SOURCE_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".cxx", ".h"}

# Files exempt from a specific rule (path suffix match).
RULE_EXEMPT = {
    "nondeterminism": ("src/core/rng.hpp", "src/core/rng.cpp"),
}

# Rules that apply only under specific path prefixes (substring match
# on the posix path, so relative and absolute invocations both work).
RULE_ONLY = {
    "kernel-heap-alloc": ("src/backend/",),
    "serve-atomic": ("src/serve/",),
}

# Rules suspended under specific path prefixes — the inverse of
# RULE_ONLY, for rules that apply everywhere *except* a directory
# where the flagged construct is the point (substring match, as
# above).
RULE_EXCEPT = {
    "simd-intrinsics": ("src/backend/simd/",),
    "float-sentinel": ("src/analysis/",),
}

RULES = [
    (
        "raw-assert",
        re.compile(r"(?<![\w.])(assert|abort)\s*\("),
        "use DLIS_CHECK/DLIS_ASSERT (throwing) instead of {match}()",
    ),
    (
        "raw-assert",
        re.compile(r"#\s*include\s*<(cassert|assert\.h)>"),
        "do not include {match}; use core/error.hpp",
    ),
    (
        "nondeterminism",
        re.compile(r"(?<![\w.])(rand|srand)\s*\("),
        "{match}() is unseeded; draw from a dlis::Rng stream",
    ),
    (
        "nondeterminism",
        re.compile(r"(?<![\w.:])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
        "wall-clock seeding breaks reproducibility; use dlis::Rng",
    ),
    (
        "nondeterminism",
        re.compile(r"std\s*::\s*random_device"),
        "std::random_device is unseeded; derive streams from dlis::Rng",
    ),
    (
        "naked-new",
        re.compile(r"(?<![\w.])new\s+[A-Za-z_(:]"),
        "naked new; use std::make_unique or a container",
    ),
    (
        "kernel-heap-alloc",
        re.compile(r"std\s*::\s*vector\s*<\s*float\s*>"),
        "per-call heap workspace in a kernel; allocate from "
        "KernelPolicy::arena (core/scratch_arena.hpp)",
    ),
    (
        "serve-atomic",
        re.compile(r"std\s*::\s*atomic\s*<"),
        "ad-hoc atomic in the serving layer; publish through "
        "obs::MetricsRegistry (obs/registry.hpp), or justify a "
        "lifecycle flag with allow(serve-atomic)",
    ),
    (
        "simd-intrinsics",
        re.compile(
            r"#\s*include\s*<(immintrin\.h|arm_neon\.h|x86intrin\.h"
            r"|emmintrin\.h|avxintrin\.h)>"
        ),
        "raw intrinsics header {match} outside src/backend/simd/; "
        "route vector code through simd::activeKernels()",
    ),
    (
        "simd-intrinsics",
        re.compile(
            r"(?<![\w.])(_mm\d{0,3}_[a-z0-9_]+"
            r"|__m(?:128|256|512)[id]?\b"
            r"|v[a-z][a-z0-9_]*q?_[suf](?:8|16|32|64)"
            r"|float32x[24]_t|int32x[24]_t|uint32x[24]_t)",
        ),
        "raw SIMD intrinsic {match} outside src/backend/simd/; "
        "route vector code through simd::activeKernels()",
    ),
    (
        "float-sentinel",
        re.compile(r"std\s*::\s*numeric_limits\s*<\s*float\s*>"),
        "float sentinel comparison outside src/analysis/; use "
        "analysis::overflowsFloat()/isFiniteValue()/kFloatMax "
        "(analysis/interval.hpp)",
    ),
]

ALLOW = re.compile(r"dlis-lint:\s*allow\(([a-z-]+)\)")


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, keeping newlines
    (and therefore line numbers) intact."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | str | char
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if ch == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if ch == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if ch == '"':
                state = "str"
                out.append(" ")
                i += 1
                continue
            if ch == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(ch)
        elif state == "line_comment":
            if ch == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if ch == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if ch == "\n" else " ")
        else:  # str or char
            quote = '"' if state == "str" else "'"
            if ch == "\\":
                out.append("  ")
                i += 2
                continue
            if ch == quote:
                state = "code"
            out.append(" ")
        i += 1
    return "".join(out)


def lint_file(path: Path) -> list[str]:
    raw = path.read_text(encoding="utf-8", errors="replace")
    stripped = strip_comments_and_strings(raw)
    raw_lines = raw.splitlines()
    violations = []
    posix = path.as_posix()
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        original = raw_lines[lineno - 1] if lineno <= len(raw_lines) else ""
        allowed = set(ALLOW.findall(original))
        for rule, pattern, message in RULES:
            if rule in allowed:
                continue
            if any(posix.endswith(e) for e in RULE_EXEMPT.get(rule, ())):
                continue
            only = RULE_ONLY.get(rule)
            if only is not None and not any(o in posix for o in only):
                continue
            if any(e in posix for e in RULE_EXCEPT.get(rule, ())):
                continue
            m = pattern.search(line)
            if m:
                what = m.group(1) if pattern.groups else m.group(0)
                violations.append(
                    f"{path}:{lineno}: [{rule}] "
                    + message.format(match=what)
                )
    return violations


def collect_files(paths: list[str]) -> list[Path]:
    files: list[Path] = []
    for p in paths:
        path = Path(p)
        if path.is_file():
            files.append(path)
        else:
            files.extend(
                f
                for f in sorted(path.rglob("*"))
                if f.suffix in SOURCE_SUFFIXES and f.is_file()
            )
    return files


def main(argv: list[str]) -> int:
    targets = argv or ["src"]
    files = collect_files(targets)
    if not files:
        print(f"dlis_lint: no source files under {targets}",
              file=sys.stderr)
        return 2
    violations: list[str] = []
    for f in files:
        violations.extend(lint_file(f))
    for v in violations:
        print(v)
    print(
        f"dlis_lint: {len(files)} files, {len(violations)} violation(s)",
        file=sys.stderr,
    )
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
