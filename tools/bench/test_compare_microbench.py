#!/usr/bin/env python3
"""Unit tests for compare_microbench.py (stdlib unittest only).

The CI lint job runs these; the gate script guards the perf CI legs,
so the gate itself needs pinning: the median/aggregate row filter,
the scalar-twin pairing, the host-fingerprint skip, and the 10%
baseline margin all get a synthetic-JSON test here. Run with:

    python3 -m unittest discover -s tools/bench -p 'test_*.py'
"""

from __future__ import annotations

import io
import json
import tempfile
import unittest
from contextlib import redirect_stderr, redirect_stdout
from pathlib import Path

import compare_microbench as cm


def doc(rows, host="ci-host", cpus=8, mhz=3200, isa="avx2"):
    """A minimal google-benchmark JSON document."""
    return {
        "context": {
            "host_name": host,
            "num_cpus": cpus,
            "mhz_per_cpu": mhz,
            "simd_isa": isa,
        },
        "benchmarks": rows,
    }


def median_row(base, ns, repeats=7):
    return {
        "name": f"{base}/repeats:{repeats}_median",
        "run_type": "aggregate",
        "real_time": ns,
    }


def iteration_row(base, ns):
    return {"name": base, "run_type": "iteration", "real_time": ns}


def run_quiet(fn, *args):
    """Call fn swallowing its prints; return its result."""
    out, err = io.StringIO(), io.StringIO()
    with redirect_stdout(out), redirect_stderr(err):
        return fn(*args)


class MediansTest(unittest.TestCase):
    def test_keeps_only_aggregate_median_rows(self):
        d = doc([
            median_row("BM_Gemm/64", 100.0),
            iteration_row("BM_Gemm/64", 999.0),
            {"name": "BM_Gemm/64/repeats:7_mean",
             "run_type": "aggregate", "real_time": 888.0},
            {"name": "BM_Gemm/64/repeats:7_median",
             "run_type": "iteration", "real_time": 777.0},
        ])
        self.assertEqual({"BM_Gemm/64": 100.0}, cm.medians(d))

    def test_strips_repeats_suffix_keeping_args(self):
        d = doc([median_row("BM_Conv/8/3/1", 42.0, repeats=3)])
        self.assertEqual({"BM_Conv/8/3/1": 42.0}, cm.medians(d))

    def test_empty_document(self):
        self.assertEqual({}, cm.medians({}))


class FingerprintTest(unittest.TestCase):
    def test_covers_host_cpus_mhz_and_isa(self):
        a = doc([])
        self.assertEqual(("ci-host", 8, 3200, "avx2"),
                         cm.fingerprint(a))
        for key, value in [("host_name", "other"), ("num_cpus", 4),
                           ("mhz_per_cpu", 2000),
                           ("simd_isa", "scalar")]:
            b = doc([])
            b["context"][key] = value
            self.assertNotEqual(cm.fingerprint(a),
                                cm.fingerprint(b), key)


class CheckSelfTest(unittest.TestCase):
    def test_dispatched_not_slower_passes(self):
        d = doc([
            median_row("BM_GemmScalar/64", 200.0),
            median_row("BM_Gemm/64", 90.0),
        ])
        self.assertEqual(0, run_quiet(cm.check_self, d, 0.10))

    def test_dispatched_slower_than_margin_fails(self):
        d = doc([
            median_row("BM_GemmScalar/64", 100.0),
            median_row("BM_Gemm/64", 125.0),
        ])
        self.assertEqual(1, run_quiet(cm.check_self, d, 0.10))

    def test_margin_is_inclusive(self):
        d = doc([
            median_row("BM_GemmScalar/64", 100.0),
            median_row("BM_Gemm/64", 110.0),
        ])
        self.assertEqual(0, run_quiet(cm.check_self, d, 0.10))

    def test_no_twins_is_a_usage_error(self):
        d = doc([median_row("BM_Gemm/64", 100.0)])
        self.assertEqual(2, run_quiet(cm.check_self, d, 0.10))

    def test_twin_without_dispatched_partner_is_skipped(self):
        d = doc([
            median_row("BM_LonelyScalar/8", 50.0),
            median_row("BM_GemmScalar/64", 100.0),
            median_row("BM_Gemm/64", 80.0),
        ])
        self.assertEqual(0, run_quiet(cm.check_self, d, 0.10))

    def test_args_must_match_between_twins(self):
        d = doc([
            median_row("BM_GemmScalar/64", 100.0),
            median_row("BM_Gemm/128", 500.0),
        ])
        self.assertEqual(2, run_quiet(cm.check_self, d, 0.10))


class CheckBaselineTest(unittest.TestCase):
    def test_within_margin_passes(self):
        base = doc([median_row("BM_Gemm/64", 100.0)])
        cur = doc([median_row("BM_Gemm/64", 109.0)])
        self.assertEqual(0, run_quiet(cm.check_baseline, base, cur,
                                      0.10))

    def test_over_margin_fails(self):
        base = doc([median_row("BM_Gemm/64", 100.0)])
        cur = doc([median_row("BM_Gemm/64", 111.0)])
        self.assertEqual(1, run_quiet(cm.check_baseline, base, cur,
                                      0.10))

    def test_fingerprint_mismatch_skips_instead_of_failing(self):
        base = doc([median_row("BM_Gemm/64", 100.0)], host="laptop")
        cur = doc([median_row("BM_Gemm/64", 900.0)], host="ci-host")
        self.assertEqual(0, run_quiet(cm.check_baseline, base, cur,
                                      0.10))

    def test_isa_change_alone_skips(self):
        base = doc([median_row("BM_Gemm/64", 100.0)], isa="avx2")
        cur = doc([median_row("BM_Gemm/64", 900.0)], isa="scalar")
        self.assertEqual(0, run_quiet(cm.check_baseline, base, cur,
                                      0.10))

    def test_no_common_benchmarks_is_a_usage_error(self):
        base = doc([median_row("BM_Old/1", 100.0)])
        cur = doc([median_row("BM_New/1", 100.0)])
        self.assertEqual(2, run_quiet(cm.check_baseline, base, cur,
                                      0.10))

    def test_only_common_names_are_compared(self):
        base = doc([median_row("BM_Gemm/64", 100.0),
                    median_row("BM_Gone/1", 1.0)])
        cur = doc([median_row("BM_Gemm/64", 105.0),
                   median_row("BM_Added/1", 999.0)])
        self.assertEqual(0, run_quiet(cm.check_baseline, base, cur,
                                      0.10))


class MainRoundTripTest(unittest.TestCase):
    def write(self, tmp, name, document):
        path = Path(tmp) / name
        path.write_text(json.dumps(document))
        return str(path)

    def test_self_mode_end_to_end(self):
        with tempfile.TemporaryDirectory() as tmp:
            good = self.write(tmp, "good.json", doc([
                median_row("BM_GemmScalar/64", 200.0),
                median_row("BM_Gemm/64", 90.0),
            ]))
            self.assertEqual(0, run_quiet(cm.main, ["--self", good]))

    def test_baseline_mode_end_to_end_with_margin_flag(self):
        with tempfile.TemporaryDirectory() as tmp:
            base = self.write(
                tmp, "base.json",
                doc([median_row("BM_Gemm/64", 100.0)]))
            cur = self.write(
                tmp, "cur.json",
                doc([median_row("BM_Gemm/64", 140.0)]))
            self.assertEqual(
                1, run_quiet(cm.main, ["--baseline", base, cur]))
            # A wider margin admits the same slowdown.
            self.assertEqual(
                0, run_quiet(cm.main, ["--baseline", base, cur,
                                       "--margin", "0.5"]))

    def test_unreadable_file_exits_2(self):
        with tempfile.TemporaryDirectory() as tmp:
            broken = Path(tmp) / "broken.json"
            broken.write_text("{not json")
            with self.assertRaises(SystemExit) as ctx:
                run_quiet(cm.main, ["--self", str(broken)])
            self.assertEqual(2, ctx.exception.code)


if __name__ == "__main__":
    unittest.main()
