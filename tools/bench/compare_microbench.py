#!/usr/bin/env python3
"""Compare kernel_microbench results; fail CI on perf regressions.

Two modes, both reading google-benchmark ``--benchmark_format=json``
output (aggregate rows; the repo's benchmarks always emit
``repeats:N_median`` entries):

``--self FILE``
    Within one run, compare every dispatched benchmark against its
    scalar-pinned twin (``BM_Foo/N`` vs ``BM_FooScalar/N``). The
    dispatched variant must not be slower than the scalar reference
    by more than the margin — the cheap invariant that survives any
    host: if dispatch ever loses to the loop it replaced, the SIMD
    layer has regressed (or its tail handling went quadratic). On a
    scalar-only host the two variants are the same code and trivially
    pass.

``--baseline BASELINE FILE``
    Compare medians name-by-name against a committed baseline (e.g.
    BENCH_kernel_microbench.json), failing on >margin slowdowns.
    Medians are only comparable on the machine that produced the
    baseline, so mismatched host fingerprints (host name, CPU count,
    nominal MHz) or a different resolved simd_isa downgrade the check
    to a warning instead of false-failing every contributor's laptop.

Exit status: 0 ok / skipped, 1 regression, 2 usage or parse error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

MEDIAN = re.compile(r"^(?P<base>.+)/repeats:\d+_median$")
SCALAR_TWIN = re.compile(r"^(?P<family>BM_\w+?)Scalar(?P<args>(/.+)?)$")


def load(path: str) -> dict:
    try:
        return json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"compare_microbench: cannot read {path}: {exc}",
              file=sys.stderr)
        sys.exit(2)


def medians(doc: dict) -> dict[str, float]:
    """Map 'BM_Name/arg' -> median real_time (ns)."""
    out: dict[str, float] = {}
    for row in doc.get("benchmarks", []):
        m = MEDIAN.match(row.get("name", ""))
        if m and row.get("run_type") == "aggregate":
            out[m.group("base")] = float(row["real_time"])
    return out


def fingerprint(doc: dict) -> tuple:
    ctx = doc.get("context", {})
    return (
        ctx.get("host_name"),
        ctx.get("num_cpus"),
        ctx.get("mhz_per_cpu"),
        ctx.get("simd_isa"),
    )


def check_self(doc: dict, margin: float) -> int:
    meds = medians(doc)
    pairs = 0
    failures = []
    for name, scalar_ns in meds.items():
        m = SCALAR_TWIN.match(name)
        if not m:
            continue
        dispatched = m.group("family") + m.group("args")
        if dispatched not in meds:
            continue
        pairs += 1
        got = meds[dispatched]
        limit = scalar_ns * (1.0 + margin)
        verdict = "ok" if got <= limit else "FAIL"
        print(f"  {dispatched}: dispatched {got:.0f} ns vs scalar "
              f"{scalar_ns:.0f} ns ({scalar_ns / got:.2f}x) {verdict}")
        if got > limit:
            failures.append(dispatched)
    if pairs == 0:
        print("compare_microbench: no scalar twins found",
              file=sys.stderr)
        return 2
    if failures:
        print(f"compare_microbench: dispatched slower than scalar "
              f"(+{margin:.0%}) for: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    print(f"compare_microbench: {pairs} scalar/dispatched pairs ok")
    return 0


def check_baseline(base: dict, cur: dict, margin: float) -> int:
    if fingerprint(base) != fingerprint(cur):
        print("compare_microbench: host/ISA fingerprint differs from "
              f"baseline ({fingerprint(base)} vs {fingerprint(cur)}); "
              "medians not comparable — skipping", file=sys.stderr)
        return 0
    base_m, cur_m = medians(base), medians(cur)
    common = sorted(set(base_m) & set(cur_m))
    if not common:
        print("compare_microbench: no common benchmarks",
              file=sys.stderr)
        return 2
    failures = []
    for name in common:
        ratio = cur_m[name] / base_m[name]
        verdict = "ok" if ratio <= 1.0 + margin else "FAIL"
        print(f"  {name}: {base_m[name]:.0f} -> {cur_m[name]:.0f} ns "
              f"({ratio:.2f}x) {verdict}")
        if ratio > 1.0 + margin:
            failures.append(name)
    if failures:
        print(f"compare_microbench: >{margin:.0%} regression vs "
              f"committed medians: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    print(f"compare_microbench: {len(common)} benchmarks within "
          f"{margin:.0%} of baseline")
    return 0


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        description="kernel_microbench regression gate")
    mode = ap.add_mutually_exclusive_group(required=True)
    mode.add_argument("--self", dest="self_file", metavar="FILE",
                      help="scalar-vs-dispatched within one JSON")
    mode.add_argument("--baseline", metavar="BASELINE",
                      help="committed baseline JSON")
    ap.add_argument("current", nargs="?",
                    help="current run JSON (baseline mode)")
    ap.add_argument("--margin", type=float, default=0.10,
                    help="allowed slowdown fraction (default 0.10)")
    args = ap.parse_args(argv)

    if args.self_file:
        return check_self(load(args.self_file), args.margin)
    if not args.current:
        ap.error("baseline mode needs the current-run JSON")
    return check_baseline(load(args.baseline), load(args.current),
                          args.margin)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
