/**
 * @file
 * Ablation — convolution algorithm choice (the paper's layer-3
 * candidates, §II-B): direct convolution vs im2col+GEMM vs Winograd
 * F(2x2, 3x3), measured on this host for real across the VGG-16 conv
 * layer shapes, with multiply counts and scratch-memory footprints.
 */

#include <chrono>
#include <functional>
#include <cstdio>

#include "backend/conv_kernels.hpp"
#include "backend/gemm.hpp"
#include "backend/im2col.hpp"
#include "backend/winograd.hpp"
#include "core/rng.hpp"
#include "bench_common.hpp"
#include "stack/report.hpp"

using namespace dlis;

namespace {

double
timeIt(const std::function<void()> &fn, int reps = 3)
{
    double best = 1e30;
    for (int r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const auto t1 = std::chrono::steady_clock::now();
        best = std::min(
            best, std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

} // namespace

int
main()
{
    TablePrinter table("Ablation — conv algorithm per VGG-16 layer "
                       "shape (host-measured, serial)");
    table.setHeader({"layer (cinxH@cout)", "direct (ms)",
                     "im2col+gemm (ms)", "winograd (ms)",
                     "wino multiply savings", "im2col scratch (KB)"});

    struct LayerShape
    {
        size_t cin, h, cout;
    };
    // One representative layer per VGG block.
    const LayerShape shapes[] = {{3, 32, 64},
                                 {64, 32, 64},
                                 {128, 16, 128},
                                 {256, 8, 256},
                                 {512, 4, 512},
                                 {512, 2, 512}};

    Rng rng(1);
    for (const auto &shape : shapes) {
        ConvParams p{1,       shape.cin, shape.h, shape.h,
                     shape.cout, 3,         3,       1,
                     1};
        Tensor input(Shape{1, shape.cin, shape.h, shape.h});
        input.fillNormal(rng, 0.0f, 1.0f);
        Tensor weight(Shape{shape.cout, shape.cin, 3, 3},
                      MemClass::Weights);
        weight.fillKaiming(rng);
        Tensor out(Shape{1, shape.cout, shape.h, shape.h});

        const double direct_ms =
            timeIt([&] {
                kernels::convDirectDense(p, input.data(),
                                         weight.data(), nullptr,
                                         out.data(), {1, true});
            }) *
            1e3;

        const size_t ck = shape.cin * 9;
        const size_t spatial = p.hout() * p.wout();
        std::vector<float> cols(ck * spatial);
        const double im2col_ms =
            timeIt([&] {
                kernels::im2col(p, input.data(), cols.data());
                kernels::gemmBlocked(weight.data(), cols.data(),
                                     out.data(), shape.cout, ck,
                                     spatial, {1, true});
            }) *
            1e3;

        const double wino_ms =
            timeIt([&] {
                kernels::convWinograd(p, input.data(), weight.data(),
                                      nullptr, out.data(), {1, true});
            }) *
            1e3;

        const double savings =
            static_cast<double>(p.macs()) /
            static_cast<double>(kernels::winogradMultiplies(p));

        char label[64];
        std::snprintf(label, sizeof(label), "%zux%zu@%zu", shape.cin,
                      shape.h, shape.cout);
        table.addRow({label, fmtDouble(direct_ms, 2),
                      fmtDouble(im2col_ms, 2), fmtDouble(wino_ms, 2),
                      fmtDouble(savings, 2) + "x",
                      fmtDouble(cols.size() * 4.0 / 1024.0, 1)});
    }
    table.print();
    bench::writeBenchOutputs(table, "ablation_conv_algos");

    std::printf("\nWinograd multiplies are 2.25x fewer by "
                "construction; whether that wins wall-clock depends "
                "on the transform overhead per tile — the exact "
                "algorithm-choice trade-off the paper's layer 3 "
                "characterises.\n");
    return 0;
}
