/**
 * @file
 * Table IV: runtime memory requirements (MB) for each model and
 * compression technique at the Table III baseline rates.
 *
 * Reproduced from first principles: every tensor and CSR array is
 * tracked byte-exactly, so the paper's headline observation — the
 * sparse-format techniques take MORE memory than the plain dense model
 * because each small filter slice carries CSR metadata (§V-D) — falls
 * out of the measured peaks, as does channel pruning's large win.
 */

#include <cstdio>

#include "bench_common.hpp"

using namespace dlis;

int
main()
{
    TablePrinter table("Table IV — runtime memory (MB), baseline "
                       "rates; paper: VGG 111.4/144.4/17.9/130.3, "
                       "ResNet 89.0/99.4/31.6/100.8, MobileNet "
                       "69.1/188.5/10.8/201.1");
    table.setHeader({"model", "plain", "w-pruning", "c-pruning",
                     "t-quantis."});

    TablePrinter detail("Table IV detail — footprint decomposition "
                        "(MB): weights + CSR metadata + activations + "
                        "scratch");
    detail.setHeader({"model", "technique", "weights", "csr-meta",
                      "activations", "scratch", "total"});

    for (const std::string &model : paperModels()) {
        std::vector<std::string> row{model};
        for (Technique technique : bench::paperTechniques()) {
            InferenceStack stack(
                bench::configFor(model, technique, tableIII(model)));
            const Footprint fp = stack.measureFootprint();
            row.push_back(fmtMb(fp.total));
            detail.addRow({model, techniqueName(technique),
                           fmtMb(fp.weights), fmtMb(fp.sparseMeta),
                           fmtMb(fp.activations), fmtMb(fp.scratch),
                           fmtMb(fp.total)});
        }
        table.addRow(std::move(row));
    }
    table.print();
    bench::writeBenchOutputs(table, "table4");
    detail.print();
    bench::writeBenchOutputs(detail, "table4_detail");

    std::printf("\nShape to verify: w-pruning and quantisation exceed "
                "plain (CSR metadata on 3x3/1x1 filters); channel "
                "pruning is far below plain; MobileNet's 1x1-heavy "
                "layout blows up worst under CSR.\n");
    return 0;
}
