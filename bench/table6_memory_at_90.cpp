/**
 * @file
 * Table VI: runtime memory (MB) with accuracy fixed at 90 %
 * (Table V rates). Paper: VGG 309.9/112.2/74.9/114.1, ResNet
 * 233.8/66.1/13.1/66.9, MobileNet 66.3/40.9/2.7/63.3.
 *
 * Note the paper's Table VI "plain" column differs from Table IV's
 * because of measurement context; we report the same built artefacts
 * as Table IV for plain, so compare technique columns relative to each
 * other (channel pruning far smallest; WP ~ TTQ).
 */

#include "bench_common.hpp"

using namespace dlis;

int
main()
{
    TablePrinter table("Table VI — runtime memory (MB) at 90% "
                       "accuracy (Table V rates)");
    table.setHeader(
        {"model", "plain", "w-pruning", "c-pruning", "t-quantis."});

    for (const std::string &model : paperModels()) {
        std::vector<std::string> row{model};
        for (Technique technique : bench::paperTechniques()) {
            InferenceStack stack(
                bench::configFor(model, technique, tableV(model)));
            row.push_back(fmtMb(stack.measureFootprint().total));
        }
        table.addRow(std::move(row));
    }
    table.print();
    bench::writeBenchOutputs(table, "table6");
    return 0;
}
