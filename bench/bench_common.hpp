/**
 * @file
 * Shared helpers for the benchmark harness binaries.
 *
 * Every bench binary regenerates one table or figure of the paper.
 * Columns labelled "sim-<platform>" come from the calibrated hardware
 * cost model (this machine has neither an Odroid-XU4 nor an i7-3820,
 * and only one core — see DESIGN.md §3); columns labelled "host" are
 * real wall-clock measurements of the actual artefact on this machine.
 * Accuracy columns are labelled "paper-calibrated" when they come from
 * the Fig-3 calibration model (src/stack/calibration.hpp).
 */

#ifndef DLIS_BENCH_BENCH_COMMON_HPP
#define DLIS_BENCH_BENCH_COMMON_HPP

#include <string>

#include "hw/cost_model.hpp"
#include "stack/baselines.hpp"
#include "stack/inference_stack.hpp"
#include "stack/report.hpp"

namespace dlis::bench {

/** Build a stack for (model, technique) at the given published rates. */
inline StackConfig
configFor(const std::string &model, Technique technique,
          const BaselineRates &rates)
{
    StackConfig config;
    config.modelName = model;
    config.technique = technique;
    switch (technique) {
      case Technique::None:
        break;
      case Technique::WeightPruning:
        config.wpSparsity = rates.wpSparsity;
        config.format = WeightFormat::Csr; // the paper's deployment
        break;
      case Technique::ChannelPruning:
        config.cpRate = rates.cpRate; // stays dense (recast network)
        break;
      case Technique::Quantisation:
        config.ttqThreshold = rates.ttqThreshold;
        config.ttqSparsity = rates.ttqSparsity;
        config.format = WeightFormat::Csr;
        break;
    }
    return config;
}

/** The four technique columns of Fig 4, in paper order. */
inline const std::vector<Technique> &
paperTechniques()
{
    static const std::vector<Technique> t{
        Technique::None, Technique::WeightPruning,
        Technique::ChannelPruning, Technique::Quantisation};
    return t;
}

/**
 * Write the standard artefact pair for one bench table: the CSV mirror
 * "<name>.csv" used by the plotting scripts and a machine-readable
 * "BENCH_<name>.json" for downstream tooling (numeric cells are JSON
 * numbers). Both are best-effort; the stdout table stays canonical.
 */
inline void
writeBenchOutputs(const TablePrinter &table, const std::string &name)
{
    table.writeCsv(name + ".csv");
    table.writeJson("BENCH_" + name + ".json");
}

} // namespace dlis::bench

#endif // DLIS_BENCH_BENCH_COMMON_HPP
