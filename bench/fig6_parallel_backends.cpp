/**
 * @file
 * Fig 6: plain (dense) models on the Odroid-XU4 under the three
 * parallel implementations — CLBlast-style im2col+GEMM library,
 * OpenMP (8 threads), and hand-tuned OpenCL kernels.
 *
 * Extension rows (§V-F's closing observation): the same comparison for
 * VGG-16 at ImageNet resolution (224x224), where the big GEMMs let the
 * library win. The 224x224 VGG-16 cost list is built analytically from
 * the layer plan (instantiating the 123M-parameter ImageNet weights is
 * unnecessary for the cost model).
 */

#include <cstdio>

#include "bench_common.hpp"
#include "nn/shape_walk.hpp"

using namespace dlis;

namespace {

/** Analytic per-layer costs of VGG-16 on a [1,3,224,224] input. */
std::vector<LayerCost>
vgg16ImageNetCosts()
{
    static const size_t plan[] = {64, 64, 0, 128, 128, 0, 256, 256, 256,
                                  0, 512, 512, 512, 0, 512, 512, 512,
                                  0};
    std::vector<LayerCost> costs;
    size_t cin = 3, h = 224, w = 224;
    size_t idx = 0;
    for (size_t entry : plan) {
        if (entry == 0) {
            h /= 2;
            w /= 2;
            continue;
        }
        ++idx;
        LayerCost c;
        c.name = "conv" + std::to_string(idx);
        c.gemmM = entry;
        c.gemmK = cin * 9;
        c.gemmN = h * w;
        c.images = 1;
        c.denseMacs = c.gemmM * c.gemmK * c.gemmN;
        c.macs = c.denseMacs;
        c.params = c.gemmM * c.gemmK;
        c.weightBytes = c.params * sizeof(float);
        c.inputBytes = cin * h * w * sizeof(float);
        c.outputBytes = entry * h * w * sizeof(float);
        c.parallel = true;
        costs.push_back(c);
        cin = entry;
    }
    // The ImageNet classifier: 25088 -> 4096 -> 4096 -> 1000.
    const size_t fc_dims[][2] = {{25088, 4096}, {4096, 4096},
                                 {4096, 1000}};
    for (size_t i = 0; i < 3; ++i) {
        LayerCost c;
        c.name = "fc" + std::to_string(i + 1);
        c.gemmM = fc_dims[i][1];
        c.gemmK = fc_dims[i][0];
        c.gemmN = 1;
        c.denseMacs = c.gemmM * c.gemmK;
        c.macs = c.denseMacs;
        c.params = c.denseMacs;
        c.weightBytes = c.params * sizeof(float);
        c.inputBytes = c.gemmK * sizeof(float);
        c.outputBytes = c.gemmM * sizeof(float);
        c.parallel = true;
        costs.push_back(c);
    }
    return costs;
}

} // namespace

int
main()
{
    const CostModel odroid(odroidXu4());

    TablePrinter table("Fig 6 — plain models on Odroid-XU4: CLBlast "
                       "vs OpenMP (8t) vs hand-tuned OpenCL");
    table.setHeader({"model", "clblast (s)", "openmp-8t (s)",
                     "opencl-hand (s)"});

    for (const std::string &model : paperModels()) {
        InferenceStack stack(bench::configFor(model, Technique::None,
                                              tableIII(model)));
        const auto costs = stack.stageCosts();
        table.addRow(
            {model,
             fmtSeconds(odroid.estimateOclGemmLib(costs).total()),
             fmtSeconds(odroid.estimateCpu(costs, 8).total()),
             fmtSeconds(odroid.estimateOclHandTuned(costs).total())});
    }
    table.print();
    bench::writeBenchOutputs(table, "fig6");

    // Extension: ImageNet-resolution VGG-16 flips the ordering.
    {
        const auto costs = vgg16ImageNetCosts();
        TablePrinter ext("Fig 6 extension — VGG-16 at 224x224 "
                         "(ImageNet): big matrices let CLBlast win "
                         "over OpenMP (§V-F)");
        ext.setHeader({"model", "clblast (s)", "openmp-8t (s)",
                       "opencl-hand (s)"});
        ext.addRow(
            {"vgg16@224",
             fmtSeconds(odroid.estimateOclGemmLib(costs).total()),
             fmtSeconds(odroid.estimateCpu(costs, 8).total()),
             fmtSeconds(odroid.estimateOclHandTuned(costs).total())});
        ext.print();
        bench::writeBenchOutputs(ext, "fig6_imagenet");
    }

    std::printf("\nShape to verify: at 32x32 the hand-tuned OpenCL "
                "kernels beat OpenMP, and CLBlast is the slowest by a "
                "wide margin (worst on ResNet-18); at 224x224 CLBlast "
                "overtakes OpenMP.\n");
    return 0;
}
