/**
 * @file
 * Ablation — the §V-D ternary-packing trade-off, measured: "Through
 * hashing at the level of bits, the memory requirement for
 * quantisation could be an order of magnitude smaller although the
 * inference time would also increase, which is the reason we chose
 * not to compact the quantised format".
 *
 * Compares the paper's deployed CSR representation against the 2-bit
 * packed representation on all three TTQ-quantised models: weight
 * bytes (exact) and inference time (simulated Odroid + host-measured).
 */

#include <cstdio>

#include "bench_common.hpp"
#include "compress/ttq.hpp"
#include "nn/shape_walk.hpp"

using namespace dlis;

int
main()
{
    const CostModel odroid(odroidXu4());

    TablePrinter table("Ablation — TTQ storage format: CSR (paper's "
                       "choice) vs 2-bit packed (declined option)");
    table.setHeader({"model", "csr weights (MB)", "packed weights (MB)",
                     "memory ratio", "csr sim-1t (s)",
                     "packed sim-1t (s)", "csr host (s)",
                     "packed host (s)"});

    for (const std::string &model : paperModels()) {
        const BaselineRates r = tableIII(model);

        StackConfig config;
        config.modelName = model;
        config.technique = Technique::Quantisation;
        config.ttqThreshold = r.ttqThreshold;
        config.ttqSparsity = r.ttqSparsity;
        config.format = WeightFormat::Csr;
        InferenceStack stack(config);

        auto weight_bytes = [&](std::vector<LayerCost> costs) {
            size_t bytes = 0;
            for (const auto &c : costs)
                bytes += c.weightBytes;
            return bytes;
        };

        const auto csr_costs = stack.stageCosts();
        const size_t csr_bytes = weight_bytes(csr_costs);
        const double csr_sim =
            odroid.estimateCpu(csr_costs, 1).total();
        ExecContext ctx;
        const double csr_host = stack.measureHostSeconds(ctx, 1);

        stack.model().setFormat(WeightFormat::PackedTernary);
        const auto packed_costs = stack.stageCosts();
        const size_t packed_bytes = weight_bytes(packed_costs);
        const double packed_sim =
            odroid.estimateCpu(packed_costs, 1).total();
        const double packed_host = stack.measureHostSeconds(ctx, 1);

        table.addRow(
            {model, fmtMb(csr_bytes), fmtMb(packed_bytes),
             fmtDouble(static_cast<double>(csr_bytes) /
                           static_cast<double>(packed_bytes),
                       1) +
                 "x",
             fmtSeconds(csr_sim), fmtSeconds(packed_sim),
             fmtSeconds(csr_host), fmtSeconds(packed_host)});
    }
    table.print();
    bench::writeBenchOutputs(table, "ablation_ternary_packing");

    std::printf("\nShape to verify: packed weights an order of "
                "magnitude (or more) smaller; packed inference slower "
                "than CSR at the paper's sparsity levels — both halves "
                "of the §V-D claim.\n");
    return 0;
}
