/**
 * @file
 * Ablation — batch-norm folding vs the per-layer synchronisation cost.
 *
 * The paper attributes MobileNet's inverse thread-scaling to its many
 * thin layers, each a synchronised parallel region (§IV-D, Fig 4e).
 * Folding the 27 batch-norms into their convolutions removes 27 of
 * those sync points without changing the function — quantifying how
 * much of the penalty is pure layer bookkeeping. Also reports the
 * energy decomposition (compute vs DRAM) before and after.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "nn/fold_bn.hpp"
#include "nn/shape_walk.hpp"

using namespace dlis;

int
main()
{
    const CostModel odroid(odroidXu4());

    TablePrinter table("Ablation — BN folding on the Odroid-XU4 "
                       "(simulated, plain dense models)");
    table.setHeader({"model", "stages before/after",
                     "1t before/after (s)", "8t before/after (s)",
                     "energy before/after (mJ)"});

    for (const std::string &name : paperModels()) {
        Rng rng(3);
        Model m = makeModel(name, 10, 1.0, rng);

        const auto before =
            collectStageCosts(m.net, Shape{1, 3, 32, 32});
        const double t1_b = odroid.estimateCpu(before, 1).total();
        const double t8_b = odroid.estimateCpu(before, 8).total();
        const double e_b =
            odroid.estimateEnergyCpu(before).total() * 1e3;

        foldBatchNorms(m.net);
        const auto after =
            collectStageCosts(m.net, Shape{1, 3, 32, 32});
        const double t1_a = odroid.estimateCpu(after, 1).total();
        const double t8_a = odroid.estimateCpu(after, 8).total();
        const double e_a =
            odroid.estimateEnergyCpu(after).total() * 1e3;

        table.addRow({name,
                      std::to_string(before.size()) + " / " +
                          std::to_string(after.size()),
                      fmtSeconds(t1_b) + " / " + fmtSeconds(t1_a),
                      fmtSeconds(t8_b) + " / " + fmtSeconds(t8_a),
                      fmtDouble(e_b, 1) + " / " + fmtDouble(e_a, 1)});
    }
    table.print();
    bench::writeBenchOutputs(table, "ablation_bn_folding");

    std::printf("\nMobileNet recovers the largest share at 8 threads "
                "— its batch-norms were almost pure synchronisation "
                "overhead, confirming the paper's mechanism for "
                "Fig 4(e). ResNet-18 keeps its in-block batch-norms "
                "(fixed block structure), so it benefits least.\n");
    return 0;
}
