/**
 * @file
 * Table III: the compression rate each technique reaches at its
 * Pareto-curve elbow, per model — echoed from the paper and verified
 * against the rates actually achieved by the built artefacts.
 */

#include "bench_common.hpp"
#include "stack/calibration.hpp"

using namespace dlis;

int
main()
{
    TablePrinter table("Table III — baseline compression rates "
                       "(paper target vs built artefact)");
    table.setHeader({"model", "WP sparsity (paper/built)",
                     "CP rate (paper/built)",
                     "TTQ thr / sparsity (paper/built)",
                     "acc@elbow (calibrated)"});

    for (const std::string &model : paperModels()) {
        const BaselineRates r = tableIII(model);

        InferenceStack wp(bench::configFor(
            model, Technique::WeightPruning, r));
        InferenceStack cp(bench::configFor(
            model, Technique::ChannelPruning, r));
        InferenceStack ttq(bench::configFor(
            model, Technique::Quantisation, r));

        table.addRow(
            {model,
             fmtPercent(r.wpSparsity) + " / " +
                 fmtPercent(wp.achievedSparsity()),
             fmtPercent(r.cpRate) + " / " +
                 fmtPercent(cp.achievedCompressionRate()),
             fmtDouble(r.ttqThreshold, 2) + " / " +
                 fmtPercent(r.ttqSparsity) + " / " +
                 fmtPercent(ttq.achievedSparsity()),
             fmtPercent(calib::weightPruningAccuracy(model,
                                                     r.wpSparsity))});
    }
    table.print();
    bench::writeBenchOutputs(table, "table3");
    return 0;
}
