/**
 * @file
 * Memory-budget → latency Pareto sweep over the paper's three models
 * (the across-stack trade-off §V-D only gestures at: im2col buys
 * latency with scratch, direct and Winograd give the bytes back).
 *
 * One tuner search per model measures both the cost-model survivors
 * and every memory-Pareto-minimal candidate; the memory planner then
 * re-selects per-layer points at budgets swept from the minimum
 * feasible peak up to the unconstrained plan's footprint. Every plan
 * is EXECUTED — the peak column is the MemoryTracker's observation,
 * not the static bound — so each row is a realised (budget, peak,
 * p50) point, with the unconstrained plan as the budget=0 row.
 */

#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "analysis/memory_estimate.hpp"
#include "bench_common.hpp"
#include "tune/mem_planner.hpp"
#include "tune/plan.hpp"
#include "tune/tuner.hpp"

using namespace dlis;

namespace {

/** The unconstrained plan with its tunable layers re-pointed at the
 *  memory planner's choice for one budget. */
tune::DeploymentPlan
planFromOutcome(const tune::DeploymentPlan &unconstrained,
                const std::vector<tune::LayerSearch> &audit,
                const tune::MemPlanOutcome &outcome)
{
    tune::DeploymentPlan plan = unconstrained;
    for (size_t li = 0; li < audit.size(); ++li) {
        const tune::CandidatePoint &cp =
            audit[li].candidates[outcome.chosen[li]];
        tune::LayerPlan &lp = plan.layers[li];
        lp.backend = cp.backend;
        lp.algo = cp.algo;
        lp.threads = cp.threads;
        lp.measuredSeconds = cp.measuredSeconds;
    }
    plan.peakBytesBound = outcome.peakBytesBound;
    return plan;
}

/** Execute @p plan and observe its true peak and p50. */
struct Measured
{
    size_t peakBytes = 0;
    double p50 = 0.0;
};

Measured
execute(InferenceStack &stack, const tune::DeploymentPlan &plan)
{
    tune::PlanRuntime runtime(plan);
    ExecContext ctx;
    runtime.bind(ctx);
    const RunReport rep = collectRunReport(stack, ctx, 3);
    Measured m;
    m.peakBytes = rep.memory.staticWeights +
                  rep.memory.staticSparseMeta +
                  rep.memory.observedActivations +
                  rep.memory.observedScratch;
    m.p50 = rep.latency.p50;
    return m;
}

} // namespace

int
main()
{
    TablePrinter table("Pareto — peak-memory budget vs tuned latency "
                       "(observed peak via MemoryTracker)");
    table.setHeader({"model", "budget bytes", "static bound",
                     "observed peak", "p50 s"});

    for (const std::string &model : paperModels()) {
        InferenceStack stack(bench::configFor(model, Technique::None,
                                              tableIII(model)));

        // One search, priced for memory: the huge budget never binds
        // but makes the tuner measure the memory-Pareto candidates.
        tune::TuneOptions opts;
        opts.reps = 2;
        opts.topK = 3;
        opts.measureEndToEnd = false;
        opts.memBudget = std::numeric_limits<size_t>::max();
        std::vector<tune::LayerSearch> audit;
        const tune::DeploymentPlan unconstrained =
            tunePlan(stack, opts, &audit);

        Network &net = stack.model().net;
        const Shape input = stack.inputShape(1);
        const tune::MemPlanOutcome probe = tune::planUnderMemBudget(
            net, input, audit, std::numeric_limits<size_t>::max());
        const size_t minPeak = probe.minFeasiblePeak;
        const size_t maxPeak =
            std::max(unconstrained.peakBytesBound, minPeak);

        // Unconstrained row first (budget 0 = none).
        const Measured free = execute(stack, unconstrained);
        table.addRow({model, "0",
                      std::to_string(unconstrained.peakBytesBound),
                      std::to_string(free.peakBytes),
                      std::to_string(free.p50)});

        for (size_t i = 0; i <= 3; ++i) {
            const size_t budget =
                minPeak + (maxPeak - minPeak) * i / 4;
            const tune::MemPlanOutcome outcome =
                tune::planUnderMemBudget(net, input, audit, budget);
            if (!outcome.feasible)
                continue;
            const tune::DeploymentPlan plan =
                planFromOutcome(unconstrained, audit, outcome);
            const Measured got = execute(stack, plan);
            table.addRow({model, std::to_string(budget),
                          std::to_string(outcome.peakBytesBound),
                          std::to_string(got.peakBytes),
                          std::to_string(got.p50)});
        }

        std::printf("%s: min feasible peak %zu bytes, unconstrained "
                    "peak %zu bytes\n",
                    model.c_str(), minPeak,
                    unconstrained.peakBytesBound);
    }

    table.print();
    bench::writeBenchOutputs(table, "pareto_mem_budget");

    std::printf("\nBudgets at the minimum feasible peak force direct "
                "convolution everywhere the scratch does not fit; "
                "loosening the budget buys back the im2col and "
                "Winograd latency the unconstrained plan chose.\n");
    return 0;
}
