/**
 * @file
 * Table V: compression rates with accuracy fixed at 90 % — echoed from
 * the paper, cross-checked against the calibration model (each rate
 * should sit at ~90 % on its Fig 3 curve) and against the built
 * artefacts' achieved rates.
 */

#include "bench_common.hpp"
#include "stack/calibration.hpp"

using namespace dlis;

int
main()
{
    TablePrinter table("Table V — compression rates at 90% accuracy "
                       "(paper / built / calibrated accuracy)");
    table.setHeader({"model", "WP sparsity", "acc(WP)", "CP rate",
                     "acc(CP)", "TTQ thr/sparsity", "acc(TTQ)"});

    for (const std::string &model : paperModels()) {
        const BaselineRates r = tableV(model);

        InferenceStack wp(
            bench::configFor(model, Technique::WeightPruning, r));
        InferenceStack cp(
            bench::configFor(model, Technique::ChannelPruning, r));

        table.addRow(
            {model,
             fmtPercent(r.wpSparsity) + " / " +
                 fmtPercent(wp.achievedSparsity()),
             fmtPercent(
                 calib::weightPruningAccuracy(model, r.wpSparsity)),
             fmtPercent(r.cpRate) + " / " +
                 fmtPercent(cp.achievedCompressionRate()),
             fmtPercent(calib::channelPruningAccuracy(model, r.cpRate)),
             fmtDouble(r.ttqThreshold, 2) + " / " +
                 fmtPercent(r.ttqSparsity),
             fmtPercent(calib::ttqAccuracy(model, r.ttqThreshold))});
    }
    table.print();
    bench::writeBenchOutputs(table, "table5");
    return 0;
}
