/**
 * @file
 * google-benchmark microbenchmarks of the compute kernels: the
 * dense-vs-CSR traversal cost that underlies the paper's sparse
 * slowdown, GEMM blocking, im2col, and the CLBlast-style library's
 * packing overhead on small vs large matrices.
 *
 * Each benchmark runs repeated measurements and reports median and
 * p90 aggregates (not a single mean): kernel times on a shared host
 * are skewed by scheduler noise, and the median/p90 pair shows both
 * the typical cost and the tail.
 */

#include <vector>

#include <benchmark/benchmark.h>

#include "backend/conv_kernels.hpp"
#include "backend/gemm.hpp"
#include "backend/gemmlib/tuned_gemm.hpp"
#include "backend/im2col.hpp"
#include "backend/simd/dispatch.hpp"
#include "backend/simd/isa.hpp"
#include "backend/winograd.hpp"
#include "core/rng.hpp"
#include "core/scratch_arena.hpp"
#include "core/tensor.hpp"
#include "tune/measure.hpp"

namespace dlis {
namespace {

/** p90 aggregate across repetitions, via the shared harness. */
double
p90Statistic(const std::vector<double> &samples)
{
    return tune::percentileOf(samples, 90.0);
}

/**
 * Register @p fn with the repeat/aggregate policy shared by every
 * microbenchmark here: 7 repetitions, report median (built-in) and
 * p90 only. google-benchmark's "median" aggregate across repetitions
 * replaces the old single-run mean.
 */
#define DLIS_BENCHMARK(fn)                                            \
    BENCHMARK(fn)                                                     \
        ->Repetitions(7)                                              \
        ->ComputeStatistics("p90", p90Statistic)                      \
        ->ReportAggregatesOnly(true)

Tensor
randomTensor(Shape shape, uint64_t seed)
{
    Rng rng(seed);
    Tensor t(std::move(shape));
    t.fillNormal(rng, 0.0f, 1.0f);
    return t;
}

/** Direct dense conv on a VGG-like layer (64ch, 32x32). */
void
BM_ConvDirectDense(benchmark::State &state)
{
    const size_t c = static_cast<size_t>(state.range(0));
    ConvParams p{1, c, 32, 32, c, 3, 3, 1, 1};
    Tensor in = randomTensor(Shape{1, c, 32, 32}, 1);
    Tensor w = randomTensor(Shape{c, c, 3, 3}, 2);
    Tensor out(Shape{1, c, 32, 32});
    for (auto _ : state) {
        kernels::convDirectDense(p, in.data(), w.data(), nullptr,
                                 out.data(), {1, true});
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * p.macs()));
}
DLIS_BENCHMARK(BM_ConvDirectDense)->Arg(16)->Arg(32)->Arg(64);

/** Scalar-pinned twin of BM_ConvDirectDense (see BM_GemmBlockedScalar). */
void
BM_ConvDirectDenseScalar(benchmark::State &state)
{
    const size_t c = static_cast<size_t>(state.range(0));
    ConvParams p{1, c, 32, 32, c, 3, 3, 1, 1};
    Tensor in = randomTensor(Shape{1, c, 32, 32}, 1);
    Tensor w = randomTensor(Shape{c, c, 3, 3}, 2);
    Tensor out(Shape{1, c, 32, 32});
    simd::ScopedForceIsa force(simd::SimdIsa::Scalar);
    for (auto _ : state) {
        kernels::convDirectDense(p, in.data(), w.data(), nullptr,
                                 out.data(), {1, true});
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * p.macs()));
}
DLIS_BENCHMARK(BM_ConvDirectDenseScalar)->Arg(16)->Arg(32)->Arg(64);

/**
 * CSR-bank conv at a given sparsity percentage: shows the per-MAC
 * traversal penalty that defeats weight pruning on real hardware.
 */
void
BM_ConvCsrBank(benchmark::State &state)
{
    const size_t c = 32;
    const double sparsity =
        static_cast<double>(state.range(0)) / 100.0;
    ConvParams p{1, c, 32, 32, c, 3, 3, 1, 1};
    Tensor in = randomTensor(Shape{1, c, 32, 32}, 3);
    Tensor w = randomTensor(Shape{c, c, 3, 3}, 4);
    Rng rng(5);
    for (size_t i = 0; i < w.numel(); ++i)
        if (rng.bernoulli(sparsity))
            w[i] = 0.0f;
    const CsrFilterBank bank = CsrFilterBank::fromFilter(w);
    Tensor out(Shape{1, c, 32, 32});
    for (auto _ : state) {
        kernels::convDirectCsrBank(p, in.data(), bank, nullptr,
                                   out.data(), {1, true});
        benchmark::DoNotOptimize(out.data());
    }
    state.counters["sparsity%"] =
        static_cast<double>(state.range(0));
}
DLIS_BENCHMARK(BM_ConvCsrBank)->Arg(0)->Arg(50)->Arg(77)->Arg(90);

/** Blocked GEMM vs problem size (dispatched micro-kernel). */
void
BM_GemmBlocked(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    Tensor a = randomTensor(Shape{n, n}, 6);
    Tensor b = randomTensor(Shape{n, n}, 7);
    Tensor c(Shape{n, n});
    for (auto _ : state) {
        kernels::gemmBlocked(a.data(), b.data(), c.data(), n, n, n,
                             {1, true});
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * n * n * n));
}
DLIS_BENCHMARK(BM_GemmBlocked)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Arg(512);

/**
 * The same blocked GEMM pinned to the scalar reference loop: the
 * BM_GemmBlocked / BM_GemmBlockedScalar ratio is the dispatch layer's
 * speedup, and tools/bench/compare_microbench.py fails CI when the
 * dispatched variant regresses toward it.
 */
void
BM_GemmBlockedScalar(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    Tensor a = randomTensor(Shape{n, n}, 6);
    Tensor b = randomTensor(Shape{n, n}, 7);
    Tensor c(Shape{n, n});
    simd::ScopedForceIsa force(simd::SimdIsa::Scalar);
    for (auto _ : state) {
        kernels::gemmBlocked(a.data(), b.data(), c.data(), n, n, n,
                             {1, true});
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * n * n * n));
}
DLIS_BENCHMARK(BM_GemmBlockedScalar)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Arg(512);

/**
 * The GEMM library's fixed packing/padding work: tiny (CIFAR-shaped)
 * calls waste most of their time, large calls amortise it — the
 * crossover behind Fig 6 vs the ImageNet extension.
 */
void
BM_GemmLibraryCall(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    const size_t m = 64, k = 576; // a VGG conv's weight matrix
    Tensor a = randomTensor(Shape{m, k}, 8);
    Tensor b = randomTensor(Shape{k, n}, 9);
    Tensor c(Shape{m, n});
    gemmlib::GemmLibrary lib;
    for (auto _ : state) {
        lib.gemm(a.data(), b.data(), c.data(), m, k, n, {1, true});
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * m * k * n));
}
DLIS_BENCHMARK(BM_GemmLibraryCall)->Arg(16)->Arg(64)->Arg(1024);

/** Winograd F(2x2,3x3) vs the direct kernel on the same layer. */
void
BM_ConvWinograd(benchmark::State &state)
{
    const size_t c = static_cast<size_t>(state.range(0));
    ConvParams p{1, c, 32, 32, c, 3, 3, 1, 1};
    Tensor in = randomTensor(Shape{1, c, 32, 32}, 11);
    Tensor w = randomTensor(Shape{c, c, 3, 3}, 12);
    Tensor out(Shape{1, c, 32, 32});
    for (auto _ : state) {
        kernels::convWinograd(p, in.data(), w.data(), nullptr,
                              out.data(), {1, true});
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(
        state.iterations() * kernels::winogradMultiplies(p)));
}
DLIS_BENCHMARK(BM_ConvWinograd)->Arg(16)->Arg(32)->Arg(64);

/** Packed-ternary decode-on-the-fly conv (the §V-D declined path). */
void
BM_ConvPackedTernary(benchmark::State &state)
{
    const size_t c = 32;
    ConvParams p{1, c, 32, 32, c, 3, 3, 1, 1};
    Tensor in = randomTensor(Shape{1, c, 32, 32}, 13);
    Tensor w = randomTensor(Shape{c, c, 3, 3}, 14);
    // Ternarise with the sparsity given by the benchmark argument.
    Rng rng(15);
    const double sparsity =
        static_cast<double>(state.range(0)) / 100.0;
    for (size_t i = 0; i < w.numel(); ++i) {
        if (rng.bernoulli(sparsity))
            w[i] = 0.0f;
        else
            w[i] = w[i] > 0.0f ? 0.25f : -0.31f;
    }
    const PackedTernary packed = PackedTernary::pack(w);
    Tensor out(Shape{1, c, 32, 32});
    for (auto _ : state) {
        kernels::convDirectPackedTernary(p, in.data(), packed, nullptr,
                                         out.data(), {1, true});
        benchmark::DoNotOptimize(out.data());
    }
    state.counters["weightKB"] =
        static_cast<double>(packed.storageBytes()) / 1024.0;
}
DLIS_BENCHMARK(BM_ConvPackedTernary)->Arg(50)->Arg(90);

/** im2col expansion rate. */
void
BM_Im2col(benchmark::State &state)
{
    const size_t c = static_cast<size_t>(state.range(0));
    ConvParams p{1, c, 32, 32, c, 3, 3, 1, 1};
    Tensor in = randomTensor(Shape{1, c, 32, 32}, 10);
    std::vector<float> cols(kernels::im2colBufferSize(p));
    for (auto _ : state) {
        kernels::im2col(p, in.data(), cols.data());
        benchmark::DoNotOptimize(cols.data());
    }
    state.SetBytesProcessed(static_cast<int64_t>(
        state.iterations() * cols.size() * sizeof(float)));
}
DLIS_BENCHMARK(BM_Im2col)->Arg(16)->Arg(64);

/** Scalar-pinned twin of BM_Im2col (see BM_GemmBlockedScalar). */
void
BM_Im2colScalar(benchmark::State &state)
{
    const size_t c = static_cast<size_t>(state.range(0));
    ConvParams p{1, c, 32, 32, c, 3, 3, 1, 1};
    Tensor in = randomTensor(Shape{1, c, 32, 32}, 10);
    std::vector<float> cols(kernels::im2colBufferSize(p));
    simd::ScopedForceIsa force(simd::SimdIsa::Scalar);
    for (auto _ : state) {
        kernels::im2col(p, in.data(), cols.data());
        benchmark::DoNotOptimize(cols.data());
    }
    state.SetBytesProcessed(static_cast<int64_t>(
        state.iterations() * cols.size() * sizeof(float)));
}
DLIS_BENCHMARK(BM_Im2colScalar)->Arg(16)->Arg(64);

/**
 * The whole im2col+GEMM conv path at steady state: a persistent
 * arena (as every ExecContext now owns) serves the column and tile
 * buffers, so after the first iteration warms it the loop performs
 * zero heap allocations — the allocation-churn fix this measures.
 */
void
BM_ConvIm2colGemmSteadyState(benchmark::State &state)
{
    const size_t c = static_cast<size_t>(state.range(0));
    ConvParams p{1, c, 32, 32, c, 3, 3, 1, 1};
    Tensor in = randomTensor(Shape{1, c, 32, 32}, 16);
    Tensor w = randomTensor(Shape{c, c, 3, 3}, 17);
    Tensor out(Shape{1, c, 32, 32});

    ScratchArena arena;
    KernelPolicy pol{1, true};
    pol.arena = &arena;

    const size_t m = p.cout;
    const size_t k = p.cin * p.kh * p.kw;
    const size_t n = p.hout() * p.wout();
    for (auto _ : state) {
        ScratchArena::Scope scope(arena);
        float *cols = arena.allocFloats(k * n);
        kernels::im2col(p, in.data(), cols);
        kernels::gemmBlocked(w.data(), cols, out.data(), m, k, n, pol);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * p.macs()));
    state.counters["arenaKB"] =
        static_cast<double>(arena.capacityBytes()) / 1024.0;
}
DLIS_BENCHMARK(BM_ConvIm2colGemmSteadyState)->Arg(16)->Arg(32)->Arg(64);

} // namespace
} // namespace dlis

/**
 * Custom main (instead of BENCHMARK_MAIN) so the emitted JSON records
 * which ISA the dispatcher resolved — scalar-vs-dispatched ratios are
 * only meaningful against the right baseline, and the comparison
 * script refuses to diff results from different ISAs.
 */
int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::AddCustomContext(
        "simd_isa", dlis::simd::isaName(dlis::simd::activeIsa()));
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
