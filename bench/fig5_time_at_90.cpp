/**
 * @file
 * Fig 5: inference time of the three compression techniques with
 * accuracy fixed at 90 % — Odroid-XU4 with 8 threads, Intel Core i7
 * with 4 threads (Table V rates).
 *
 * Paper shapes to verify: channel pruning dominates everywhere; on the
 * Odroid, the channel-pruned *MobileNet* is slower than the channel-
 * pruned big networks — compressed VGG-16/ResNet-18 beat the network
 * hand-designed for embedded use (§V-E).
 */

#include <cstdio>

#include "bench_common.hpp"

using namespace dlis;

int
main()
{
    const CostModel odroid(odroidXu4());
    const CostModel i7(intelCoreI7());

    TablePrinter table("Fig 5 — inference time at 90% accuracy "
                       "(Table V rates)");
    table.setHeader({"model", "technique", "sim-odroid 8t (s)",
                     "sim-i7 4t (s)", "host 1t (s)"});

    for (const std::string &model : paperModels()) {
        for (Technique technique :
             {Technique::WeightPruning, Technique::ChannelPruning,
              Technique::Quantisation}) {
            InferenceStack stack(
                bench::configFor(model, technique, tableV(model)));
            const auto costs = stack.stageCosts();
            ExecContext ctx;
            table.addRow(
                {model, techniqueName(technique),
                 fmtSeconds(odroid.estimateCpu(costs, 8).total()),
                 fmtSeconds(i7.estimateCpu(costs, 4).total()),
                 fmtSeconds(stack.measureHostSeconds(ctx, 1))});
        }
    }
    table.print();
    bench::writeBenchOutputs(table, "fig5");

    std::printf("\nShape to verify: channel pruning fastest per model; "
                "on the Odroid the channel-pruned VGG-16 and ResNet-18 "
                "beat MobileNet.\n");
    return 0;
}
