/**
 * @file
 * Extension — memory footprint under im2col (§V-D's closing remark:
 * "The memory footprint observation would be different for other
 * algorithms implementation — such as im2col, which is not covered in
 * these baseline experiments").
 *
 * Measures the same plain models as Table IV with the im2col+GEMM
 * algorithm: the per-layer column buffer (cin*k*k x hout*wout floats)
 * appears as scratch and multiplies the activation-side footprint,
 * while the weight side is unchanged.
 */

#include <cstdio>

#include "bench_common.hpp"

using namespace dlis;

int
main()
{
    TablePrinter table("Extension — plain-model footprint (MB): "
                       "direct convolution vs im2col+GEMM");
    table.setHeader({"model", "direct total", "direct scratch",
                     "im2col total", "im2col scratch"});

    for (const std::string &model : paperModels()) {
        InferenceStack stack(bench::configFor(model, Technique::None,
                                              tableIII(model)));
        const Footprint direct =
            stack.measureFootprint(1, ConvAlgo::Direct);
        const Footprint im2col =
            stack.measureFootprint(1, ConvAlgo::Im2colGemm);
        table.addRow({model, fmtMb(direct.total),
                      fmtMb(direct.scratch), fmtMb(im2col.total),
                      fmtMb(im2col.scratch)});
    }
    table.print();
    bench::writeBenchOutputs(table, "extension_im2col_memory");

    std::printf("\nim2col pays a scratch buffer of cin*k*k x spatial "
                "floats per conv layer (up to 9x the activation it "
                "expands) — the footprint difference §V-D alludes "
                "to.\n");
    return 0;
}
