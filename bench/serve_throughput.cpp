/**
 * @file
 * Serving-layer throughput: batch=1 one-at-a-time inference vs the
 * concurrent batched engine (src/serve) on the same stack.
 *
 * The paper measures single-image latency; a serving deployment cares
 * about sustained throughput, where batching is the dominant knob
 * (Pochelu 2022) and request-level scheduling the second (OODIn
 * 2021). This bench quantifies both on this host: for each model and
 * CPU backend it measures
 *   serial:  N requests forwarded one at a time, batch=1, one thread
 *            of control (the paper's measurement loop);
 *   batched: the same N requests fired in a burst at the engine,
 *            which coalesces them into up-to-maxBatch forwards on a
 *            worker pool.
 * The speedup column is batched/serial image throughput. Batching
 * wins by amortising per-forward fixed costs — layer dispatch,
 * activation-tensor allocation, and above all (OpenMP backend) one
 * parallel-region launch per parallel kernel per forward: at
 * serving-size widths those launches dominate a batch=1 MobileNet
 * forward, and one batch of 48 pays them once instead of 48 times.
 * The models run at width 0.125 (the serving-size end of MobileNet's
 * width-multiplier family; all three models keep every layer) and the
 * OpenMP rows use 8 threads, the paper's full-platform Odroid
 * configuration (Fig 4).
 *
 * The engine's telemetry registry is live during every batched cell —
 * there is no way to switch it off, so the batched column *is* the
 * telemetry-enabled number (the per-request publishing is a handful
 * of relaxed atomic adds; budgeted at <= 2% of throughput). Each cell
 * finishes with a scrape sanity check: the registry must have counted
 * exactly the requests the bench pushed through.
 *
 * Writes serve_throughput.csv + BENCH_serve_throughput.json.
 */

#include <chrono>
#include <future>
#include <vector>

#include "bench_common.hpp"
#include "core/error.hpp"
#include "core/logging.hpp"
#include "core/rng.hpp"
#include "serve/engine.hpp"

using namespace dlis;

namespace {

/** Requests per (model, backend) cell. */
constexpr size_t kRequests = 96;

/** Images/second for one-at-a-time batch=1 forwards. */
double
serialThroughput(InferenceStack &stack, Backend backend, int threads,
                 const std::vector<Tensor> &inputs)
{
    ExecContext ctx;
    ctx.backend = backend;
    ctx.threads = threads;
    const auto start = std::chrono::steady_clock::now();
    for (const Tensor &input : inputs)
        (void)stack.model().net.forward(input, ctx);
    const double seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    return static_cast<double>(inputs.size()) / seconds;
}

/** Images/second through the batched engine (burst submission). */
double
batchedThroughput(InferenceStack &stack, Backend backend, int threads,
                  const std::vector<Tensor> &inputs)
{
    serve::ServeConfig config;
    config.backend = backend;
    config.threads = threads;
    config.workers = 1;
    config.maxBatch = 48;
    config.maxDelayUs = 5000;
    config.queueCapacity = inputs.size();
    serve::InferenceEngine engine(stack, config);

    std::vector<std::future<Tensor>> futures;
    futures.reserve(inputs.size());
    const auto start = std::chrono::steady_clock::now();
    for (const Tensor &input : inputs)
        futures.push_back(engine.submit(input));
    for (auto &f : futures)
        (void)f.get();
    const double seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    engine.shutdown();

    // Scrape sanity: the live registry counted what we measured.
    const serve::EngineStats stats = engine.stats();
    DLIS_CHECK(stats.completed == inputs.size(),
               "telemetry scrape disagrees with the bench: counted ",
               stats.completed, " completed of ", inputs.size());

    return static_cast<double>(inputs.size()) / seconds;
}

} // namespace

int
main()
{
    setLogLevel(LogLevel::Warn);

    TablePrinter table(
        "Serving throughput: batch=1 serial vs batched engine "
        "(imgs/s, " + std::to_string(kRequests) + " requests, "
        "width 0.125, max-batch 48, OpenMP x8)");
    table.setHeader({"model", "backend", "serial", "batched",
                     "speedup"});

    const std::vector<std::string> models{"mobilenet", "resnet18",
                                          "vgg16"};
    const std::vector<std::pair<Backend, int>> backends{
        {Backend::Serial, 1}, {Backend::OpenMP, 8}};

    for (const std::string &model : models) {
        StackConfig config;
        config.modelName = model;
        config.widthMult = 0.125; // serving-size variants, same layers
        InferenceStack stack(config);

        std::vector<Tensor> inputs;
        inputs.reserve(kRequests);
        for (size_t i = 0; i < kRequests; ++i) {
            Rng rng(42, i);
            Tensor image(stack.inputShape(1));
            image.fillNormal(rng, 0.0f, 1.0f);
            inputs.push_back(std::move(image));
        }

        for (const auto &[backend, threads] : backends) {
            // Warm one forward so first-touch costs hit neither side.
            ExecContext warm;
            warm.backend = backend;
            warm.threads = threads;
            (void)stack.model().net.forward(inputs.front(), warm);

            const double serial =
                serialThroughput(stack, backend, threads, inputs);
            const double batched =
                batchedThroughput(stack, backend, threads, inputs);
            table.addRow({model, backendName(backend),
                          fmtDouble(serial, 1), fmtDouble(batched, 1),
                          fmtDouble(batched / serial, 2)});
        }
    }

    table.print();
    bench::writeBenchOutputs(table, "serve_throughput");
    return 0;
}
