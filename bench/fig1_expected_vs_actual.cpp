/**
 * @file
 * Fig 1: expected vs observed inference time for VGG-16 on the Intel
 * Core i7 as weight pruning removes an increasing share of parameters.
 *
 * "Expected" scales the dense inference time by the fraction of MACs
 * remaining; "actual" is the simulated time of the CSR-format model —
 * the gap is the paper's motivating observation.
 */

#include <cstdio>

#include "bench_common.hpp"

using namespace dlis;

int
main()
{
    const CostModel i7(intelCoreI7());

    // Dense reference.
    InferenceStack plain(
        bench::configFor("vgg16", Technique::None, tableIII("vgg16")));
    const double dense_sec =
        i7.estimateCpu(plain.stageCosts(), 1).total();
    ExecContext host_ctx;
    const double host_dense = plain.measureHostSeconds(host_ctx, 1);

    TablePrinter table(
        "Fig 1 — expected vs actual inference time, VGG-16 on Intel "
        "Core i7 (1 thread, CSR format)");
    table.setHeader({"pruned%", "mac-fraction", "expected(s)",
                     "actual-sim(s)", "actual-host(s)", "slowdown"});

    for (int pct = 0; pct <= 90; pct += 10) {
        StackConfig config;
        config.modelName = "vgg16";
        config.technique = Technique::WeightPruning;
        config.wpSparsity = pct / 100.0;
        config.format = WeightFormat::Csr;
        InferenceStack stack(config);

        const double frac = stack.macFraction();
        const double expected = CostModel::expectedTime(dense_sec, frac);
        const double actual =
            i7.estimateCpu(stack.stageCosts(), 1).total();
        ExecContext ctx;
        const double host = stack.measureHostSeconds(ctx, 1);

        table.addRow({std::to_string(pct), fmtDouble(frac, 4),
                      fmtSeconds(expected), fmtSeconds(actual),
                      fmtSeconds(host),
                      fmtDouble(actual / expected, 2) + "x"});
    }
    table.print();
    bench::writeBenchOutputs(table, "fig1");

    std::printf("\nDense reference: sim %.4fs (host %.4fs). The actual "
                "curve never follows the expected curve down — the "
                "paper's motivating gap.\n",
                dense_sec, host_dense);
    return 0;
}
