/**
 * @file
 * Extension — energy characterisation. The paper's introduction (§I)
 * motivates compression with energy: "the bottleneck for inference
 * computation was off-chip DRAM accesses, and that when the memory
 * requirements of a CNN are reduced, the energy consumption ... [is]
 * also reduced" (citing Han et al. [12]). The paper itself only
 * reports time and memory; this bench adds the energy column its
 * motivation implies, using the cost model's first-order MAC/DRAM
 * energy constants.
 */

#include <cstdio>

#include "bench_common.hpp"

using namespace dlis;

int
main()
{
    const CostModel odroid(odroidXu4());
    const CostModel i7(intelCoreI7());

    TablePrinter table("Extension — simulated energy per inference "
                       "(mJ), Table III baseline rates");
    table.setHeader({"model", "technique", "odroid compute",
                     "odroid dram", "odroid total", "i7 total"});

    for (const std::string &model : paperModels()) {
        for (Technique technique : bench::paperTechniques()) {
            InferenceStack stack(
                bench::configFor(model, technique, tableIII(model)));
            const auto costs = stack.stageCosts();
            const EnergyBreakdown o = odroid.estimateEnergyCpu(costs);
            const EnergyBreakdown x = i7.estimateEnergyCpu(costs);
            table.addRow({model, techniqueName(technique),
                          fmtDouble(o.computeJoules * 1e3, 2),
                          fmtDouble(o.dramJoules * 1e3, 2),
                          fmtDouble(o.total() * 1e3, 2),
                          fmtDouble(x.total() * 1e3, 2)});
        }
    }
    table.print();
    bench::writeBenchOutputs(table, "extension_energy");

    std::printf("\nReading: channel pruning wins energy for the same "
                "reason it wins time (less of everything); the CSR "
                "formats trade MAC energy for traversal energy and "
                "*increase* DRAM energy via their metadata — the "
                "energy face of the paper's Fig 4 / Table IV "
                "findings.\n");
    return 0;
}
