/**
 * @file
 * Fig 4 (a-f): inference time vs OpenMP thread count for the three
 * models x four variants (plain, weight-pruned, channel-pruned,
 * quantised) at the Table III baseline rates, on the Odroid-XU4
 * (1/2/4/8 threads) and the Intel Core i7 (1/2/4 threads).
 *
 * Simulated times come from the calibrated hardware models; one real
 * host measurement (serial) per configuration is reported alongside so
 * the relative ordering can be cross-checked on real execution.
 */

#include <cstdio>
#include <memory>

#include "bench_common.hpp"

using namespace dlis;

int
main()
{
    const CostModel odroid(odroidXu4());
    const CostModel i7(intelCoreI7());

    for (const std::string &model : paperModels()) {
        TablePrinter table("Fig 4 — " + model +
                           " (Table III baseline rates)");
        table.setHeader({"technique", "sim-odroid 1t", "sim-odroid 2t",
                         "sim-odroid 4t", "sim-odroid 8t", "sim-i7 1t",
                         "sim-i7 2t", "sim-i7 4t", "host 1t"});

        for (Technique technique : bench::paperTechniques()) {
            InferenceStack stack(
                bench::configFor(model, technique, tableIII(model)));
            const auto costs = stack.stageCosts();

            std::vector<std::string> row{techniqueName(technique)};
            for (int threads : {1, 2, 4, 8})
                row.push_back(fmtSeconds(
                    odroid.estimateCpu(costs, threads).total()));
            for (int threads : {1, 2, 4})
                row.push_back(fmtSeconds(
                    i7.estimateCpu(costs, threads).total()));
            ExecContext ctx;
            row.push_back(fmtSeconds(stack.measureHostSeconds(ctx, 1)));
            table.addRow(std::move(row));
        }
        table.print();
        bench::writeBenchOutputs(table, "fig4_" + model);
    }

    std::printf(
        "\nPaper observations to verify: channel pruning wins every "
        "setup; weight pruning / quantisation (CSR) fail to beat plain "
        "on VGG-16 and ResNet-18; MobileNet gets *slower* with more "
        "threads.\n");

    // Ablation called out in DESIGN.md: set the per-layer fork/join
    // cost to zero and MobileNet's inverse scaling disappears —
    // evidence that per-layer synchronisation is the mechanism.
    {
        DeviceModel no_sync = odroidXu4();
        no_sync.forkJoinSecPerThread = 0.0;
        const CostModel ablated(no_sync);
        InferenceStack stack(bench::configFor(
            "mobilenet", Technique::None, tableIII("mobilenet")));
        const auto costs = stack.stageCosts();

        TablePrinter table("Ablation — MobileNet on Odroid-XU4 with "
                           "per-layer fork/join cost removed");
        table.setHeader({"threads", "with sync cost", "without"});
        for (int threads : {1, 2, 4, 8}) {
            table.addRow(
                {std::to_string(threads),
                 fmtSeconds(odroid.estimateCpu(costs, threads).total()),
                 fmtSeconds(
                     ablated.estimateCpu(costs, threads).total())});
        }
        table.print();
    }
    return 0;
}
