/**
 * @file
 * Fig 3: accuracy/compression Pareto curves for the three models under
 * (a) weight pruning, (b) channel pruning, (c) ternary quantisation.
 *
 * Two kinds of rows are produced:
 *  - paper-calibrated: the parametric fit to the paper's published
 *    anchor points, evaluated at paper scale (see
 *    src/stack/calibration.hpp);
 *  - measured-synthetic: the full recipe (train -> compress ->
 *    fine-tune -> evaluate) run for real on width-reduced models and
 *    the SynthCIFAR dataset. These demonstrate the *trend* — e.g.
 *    accuracy surviving moderate pruning then collapsing — not the
 *    paper's absolute numbers.
 *
 * Set DLIS_FIG3_MEASURED=0 to skip the (slower) measured sweep.
 */

#include <cstdio>
#include <cstdlib>

#include "bench_common.hpp"
#include "compress/magnitude_pruner.hpp"
#include "compress/ttq.hpp"
#include "data/synth_cifar.hpp"
#include "stack/calibration.hpp"
#include "train/trainer.hpp"

using namespace dlis;

namespace {

void
printCalibratedCurves()
{
    {
        TablePrinter t("Fig 3(a) — accuracy vs weight-pruning sparsity "
                       "(paper-calibrated)");
        t.setHeader({"sparsity%", "vgg16", "resnet18", "mobilenet"});
        for (int pct = 0; pct <= 95; pct += 5) {
            const double s = pct / 100.0;
            t.addRow({std::to_string(pct),
                      fmtPercent(calib::weightPruningAccuracy("vgg16",
                                                              s)),
                      fmtPercent(
                          calib::weightPruningAccuracy("resnet18", s)),
                      fmtPercent(calib::weightPruningAccuracy(
                          "mobilenet", s))});
        }
        t.print();
        bench::writeBenchOutputs(t, "fig3a");
    }
    {
        TablePrinter t("Fig 3(b) — accuracy vs channel-pruning "
                       "compression rate (paper-calibrated)");
        t.setHeader({"rate%", "vgg16", "resnet18", "mobilenet"});
        for (int pct = 60; pct <= 97; pct += 4) {
            const double r = pct / 100.0;
            t.addRow({std::to_string(pct),
                      fmtPercent(
                          calib::channelPruningAccuracy("vgg16", r)),
                      fmtPercent(
                          calib::channelPruningAccuracy("resnet18", r)),
                      fmtPercent(calib::channelPruningAccuracy(
                          "mobilenet", r))});
        }
        t.print();
        bench::writeBenchOutputs(t, "fig3b");
    }
    {
        TablePrinter t("Fig 3(c) — accuracy vs TTQ threshold "
                       "(paper-calibrated)");
        t.setHeader({"threshold", "vgg16", "resnet18", "mobilenet"});
        for (int i = 0; i <= 10; ++i) {
            const double thr = 0.02 * i;
            t.addRow({fmtDouble(thr, 2),
                      fmtPercent(calib::ttqAccuracy("vgg16", thr)),
                      fmtPercent(calib::ttqAccuracy("resnet18", thr)),
                      fmtPercent(calib::ttqAccuracy("mobilenet", thr))});
        }
        t.print();
        bench::writeBenchOutputs(t, "fig3c");
    }
}

/** Train a width-reduced model on SynthCIFAR; return test accuracy. */
double
trainSmall(Model &model, const SynthCifarSplit &data, Trainer &trainer,
           size_t epochs)
{
    (void)model;
    trainer.trainEpochs(epochs);
    return trainer.evaluate(data.test);
}

void
measuredSweep()
{
    const SynthCifarSplit data = makeSynthCifarSplit(512, 256);
    TrainConfig tc;
    tc.batchSize = 32;
    tc.baseLr = 0.05;
    tc.augment = true;

    TablePrinter t("Fig 3(a') — measured-synthetic: VGG-16 (width "
                   "0.125) on SynthCIFAR, iterative prune + fine-tune");
    t.setHeader({"sparsity%", "top-1 acc", "note"});

    Rng rng(3);
    Model model = makeVgg16(10, 0.125, rng);
    Trainer trainer(model.net, data.train, tc);
    const double base = trainSmall(model, data, trainer, 4);
    t.addRow({"0", fmtPercent(base), "trained from scratch"});

    MagnitudePruner pruner;
    for (double s : {0.5, 0.8, 0.95}) {
        pruner.pruneToSparsity(model, s);
        trainer.setPostStepHook([&] { pruner.applyMasks(model); });
        trainer.trainSteps(data.train.size() / tc.batchSize, 0.2);
        trainer.setPostStepHook(nullptr);
        const double acc = trainer.evaluate(data.test);
        t.addRow({fmtDouble(s * 100.0, 0), fmtPercent(acc),
                  "pruned + fine-tuned, sparsity " +
                      fmtPercent(model.weightSparsity())});
    }
    t.print();
    bench::writeBenchOutputs(t, "fig3a_measured");
}

} // namespace

int
main()
{
    printCalibratedCurves();

    const char *flag = std::getenv("DLIS_FIG3_MEASURED");
    if (!flag || std::string(flag) != "0") {
        std::printf("\nRunning the measured-synthetic sweep (set "
                    "DLIS_FIG3_MEASURED=0 to skip)...\n");
        measuredSweep();
    }
    return 0;
}
