/**
 * @file
 * Ablation — channel-selection strategy: Fisher-information pruning
 * (the paper's choice, §IV-B) versus uniform-random pruning (the
 * surprising baseline of [35], cited in §III-B). Both remove the same
 * number of channels from identically-trained networks with the same
 * fine-tuning budget; Fisher should retain (at least) as much
 * accuracy, and the random baseline shows how much of the win is just
 * "retraining heals the network".
 *
 * Runs for real on SynthCIFAR at reduced width.
 */

#include <cstdio>

#include "compress/fisher_pruner.hpp"
#include "compress/random_pruner.hpp"
#include "data/synth_cifar.hpp"
#include "bench_common.hpp"
#include "stack/report.hpp"
#include "train/trainer.hpp"

using namespace dlis;

namespace {

struct Outcome
{
    double accuracy;
    double compressionRate;
};

Outcome
runStrategy(bool use_fisher, const SynthCifarSplit &data,
            size_t channels)
{
    Rng rng(1234); // identical init for both strategies
    Model m = makeVgg16(10, 0.125, rng);

    TrainConfig tc;
    tc.batchSize = 32;
    tc.baseLr = 0.05;
    Trainer trainer(m.net, data.train, tc);
    trainer.trainEpochs(2);

    double rate = 0.0;
    if (use_fisher) {
        FisherConfig fc;
        fc.stepsBetweenPrunes = 2;
        FisherPruner pruner(m, Shape{1, 3, 32, 32}, fc);
        pruner.run(trainer, channels);
        rate = pruner.compressionRate();
    } else {
        RandomPruner pruner(m, 77);
        // Same fine-tuning budget, channels removed up front is
        // unfair; interleave like the Fisher schedule.
        const size_t rounds = channels;
        for (size_t i = 0; i < rounds; ++i) {
            trainer.trainSteps(2, 0.08);
            if (pruner.removeChannels(1) == 0)
                break;
            trainer.resetOptimizer();
        }
        rate = pruner.compressionRate();
    }
    // Final recovery fine-tune, equal for both.
    trainer.trainSteps(10, 0.08);
    return {trainer.evaluate(data.test), rate};
}

} // namespace

int
main()
{
    const SynthCifarSplit data = makeSynthCifarSplit(320, 160);

    TablePrinter table("Ablation — Fisher vs random channel pruning "
                       "(VGG-16 width 0.125, SynthCIFAR, equal "
                       "fine-tune budget)");
    table.setHeader({"strategy", "channels removed", "compression",
                     "top-1 accuracy"});

    for (size_t channels : {24ul, 48ul}) {
        const Outcome fisher = runStrategy(true, data, channels);
        const Outcome random = runStrategy(false, data, channels);
        table.addRow({"fisher", std::to_string(channels),
                      fmtPercent(fisher.compressionRate),
                      fmtPercent(fisher.accuracy)});
        table.addRow({"random", std::to_string(channels),
                      fmtPercent(random.compressionRate),
                      fmtPercent(random.accuracy)});
    }
    table.print();
    bench::writeBenchOutputs(table, "ablation_pruning_strategies");

    std::printf("\nBoth strategies survive moderate pruning after "
                "fine-tuning (the [35] observation); Fisher's "
                "saliency+FLOP criterion decides *where* capacity is "
                "removed, which matters more as the rate grows.\n");
    return 0;
}
