/**
 * @file
 * End-to-end edge-deployment workflow — the paper's §V-E scenario: a
 * big network, channel-pruned with Fisher information under a FLOP
 * penalty, ends up faster than the hand-designed-for-mobile MobileNet.
 *
 * Runs the full recipe for real at reduced width on SynthCIFAR:
 *   train VGG-16  ->  Fisher prune (fine-tuning between removals)
 *   ->  compare accuracy / simulated Odroid latency / memory against
 *       a trained MobileNet.
 */

#include <cstdio>

#include "compress/fisher_pruner.hpp"
#include "data/synth_cifar.hpp"
#include "hw/cost_model.hpp"
#include "nn/shape_walk.hpp"
#include "train/trainer.hpp"

using namespace dlis;

namespace {

struct Candidate
{
    const char *label;
    double accuracy;
    double odroidSec;
    size_t params;
};

Candidate
evaluate(const char *label, Model &model, Trainer &trainer,
         const Dataset &test, const CostModel &odroid)
{
    const auto costs =
        collectStageCosts(model.net, Shape{1, 3, 32, 32});
    return {label, trainer.evaluate(test),
            odroid.estimateCpu(costs, 8).total(),
            model.net.parameterCount()};
}

} // namespace

int
main()
{
    const CostModel odroid(odroidXu4());
    const SynthCifarSplit data = makeSynthCifarSplit(320, 160);

    TrainConfig tc;
    tc.batchSize = 32;
    tc.baseLr = 0.05;

    // Contender 1: MobileNet, the network designed for the edge.
    Rng rng_m(7);
    Model mobilenet = makeMobileNet(10, 0.25, rng_m);
    Trainer mobile_trainer(mobilenet.net, data.train, tc);
    mobile_trainer.trainEpochs(6);
    const Candidate mobile = evaluate("mobilenet (trained)", mobilenet,
                                      mobile_trainer, data.test,
                                      odroid);

    // Contender 2: VGG-16, trained then Fisher-pruned.
    Rng rng_v(8);
    Model vgg = makeVgg16(10, 0.125, rng_v);
    Trainer vgg_trainer(vgg.net, data.train, tc);
    vgg_trainer.trainEpochs(4);
    const Candidate vgg_dense = evaluate("vgg16 (dense)", vgg,
                                         vgg_trainer, data.test,
                                         odroid);

    FisherConfig fc;
    fc.stepsBetweenPrunes = 2;
    fc.flopPenalty = 1e-6; // the paper's beta
    FisherPruner pruner(vgg, Shape{1, 3, 32, 32}, fc);
    pruner.run(vgg_trainer, 64); // remove 64 channels
    const Candidate vgg_pruned = evaluate("vgg16 (fisher-pruned)", vgg,
                                          vgg_trainer, data.test,
                                          odroid);

    std::printf("\n%-24s %10s %14s %12s\n", "candidate", "top-1",
                "odroid-8t (s)", "params");
    for (const Candidate &c : {vgg_dense, vgg_pruned, mobile}) {
        std::printf("%-24s %9.2f%% %14.4f %12zu\n", c.label,
                    c.accuracy * 100.0, c.odroidSec, c.params);
    }
    std::printf("\ncompression rate achieved: %.2f%%\n",
                pruner.compressionRate() * 100.0);
    std::printf("The pruned big network competes with (or beats) the "
                "hand-designed mobile network — the paper's §V-E "
                "conclusion.\n");
    return 0;
}
