/**
 * @file
 * Quickstart: build a CNN, run one inference, inspect cost facts.
 *
 *   $ ./examples/quickstart [vgg16|resnet18|mobilenet]
 *
 * Demonstrates the minimal public API surface: model construction,
 * the execution context, per-layer cost introspection, and the
 * hardware cost model.
 */

#include <cstdio>
#include <string>

#include "hw/cost_model.hpp"
#include "nn/models/model.hpp"
#include "nn/shape_walk.hpp"
#include "train/loss.hpp"

using namespace dlis;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "resnet18";

    // 1. Build a model (width 0.5 keeps this example snappy).
    Rng rng(42);
    Model model = makeModel(name, /*classes=*/10, /*widthMult=*/0.5,
                            rng);
    std::printf("built %s: %zu parameters, %zu layers\n",
                model.net.name().c_str(), model.net.parameterCount(),
                model.net.size());

    // 2. Run one inference on a random CIFAR-shaped image.
    Tensor image(Shape{1, 3, 32, 32});
    image.fillNormal(rng, 0.0f, 1.0f);

    ExecContext ctx; // serial backend, direct convolution, dense
    Tensor logits = model.net.forward(image, ctx);

    std::printf("logits:");
    for (size_t c = 0; c < logits.numel(); ++c)
        std::printf(" %+.3f", logits[c]);
    std::printf("\n");

    // 3. Inspect where the compute lives.
    const auto costs = collectStageCosts(model.net, image.shape());
    size_t total_macs = 0;
    for (const auto &c : costs)
        total_macs += c.denseMacs;
    std::printf("%zu compute stages, %.1f MMACs total\n", costs.size(),
                static_cast<double>(total_macs) / 1e6);

    // 4. Ask the hardware models what this inference would cost on
    //    the paper's platforms.
    const CostModel odroid(odroidXu4());
    const CostModel i7(intelCoreI7());
    std::printf("simulated inference time:\n");
    for (int threads : {1, 4, 8})
        std::printf("  odroid-xu4, %d threads: %.3f s\n", threads,
                    odroid.estimateCpu(costs, threads).total());
    for (int threads : {1, 4})
        std::printf("  i7-3820,    %d threads: %.3f s\n", threads,
                    i7.estimateCpu(costs, threads).total());
    std::printf("  odroid-xu4, hand-tuned OpenCL: %.3f s\n",
                odroid.estimateOclHandTuned(costs).total());
    return 0;
}
