/**
 * @file
 * Heterogeneous-backend tour: run the SAME network through every
 * systems-layer candidate (serial C, OpenMP, hand-tuned OpenCL via the
 * simulator, CLBlast-style GEMM library), verify they agree
 * numerically, and show the CLTune-style auto-tuner at work.
 */

#include <cstdio>

#include "backend/gemmlib/autotuner.hpp"
#include "hw/cost_model.hpp"
#include "nn/models/model.hpp"
#include "nn/shape_walk.hpp"

using namespace dlis;

int
main()
{
    Rng rng(99);
    Model model = makeResNet18(10, 0.25, rng);
    Tensor image(Shape{1, 3, 32, 32});
    image.fillNormal(rng, 0.0f, 1.0f);

    // Reference output: the serial C implementation.
    ExecContext serial;
    const Tensor reference = model.net.forward(image, serial);

    std::printf("backend parity vs serial (max |diff| on logits):\n");

    ExecContext omp;
    omp.backend = Backend::OpenMP;
    omp.threads = 4;
    std::printf("  openmp (4 threads):      %.2e\n",
                model.net.forward(image, omp).maxAbsDiff(reference));

    oclsim::CommandQueue queue;
    ExecContext ocl;
    ocl.backend = Backend::OclHandTuned;
    ocl.queue = &queue;
    const float ocl_diff =
        model.net.forward(image, ocl).maxAbsDiff(reference);
    std::printf("  opencl hand-tuned (sim): %.2e  (%zu kernel "
                "launches, %zu KiB transferred)\n",
                ocl_diff, queue.launches().size(),
                queue.totalTransferBytes() / 1024);

    gemmlib::GemmLibrary lib;
    ExecContext gemm;
    gemm.backend = Backend::OclGemmLib;
    gemm.gemmLib = &lib;
    const float lib_diff =
        model.net.forward(image, gemm).maxAbsDiff(reference);
    std::printf("  clblast-style library:   %.2e  (%zu GEMM calls, "
                "%.1fx padding waste)\n",
                lib_diff, lib.stats().kernelLaunches,
                static_cast<double>(lib.stats().paddedFlops) /
                    static_cast<double>(lib.stats().flops));

    // What would each backend cost on the Odroid?
    const CostModel odroid(odroidXu4());
    const auto costs = collectStageCosts(model.net, image.shape());
    std::printf("\nsimulated Odroid-XU4 latency:\n");
    std::printf("  openmp 8 threads:  %.3f s\n",
                odroid.estimateCpu(costs, 8).total());
    std::printf("  opencl hand-tuned: %.3f s\n",
                odroid.estimateOclHandTuned(costs).total());
    std::printf("  clblast library:   %.3f s\n",
                odroid.estimateOclGemmLib(costs).total());

    // CLTune-style auto-tuning of the GEMM kernel for one layer shape.
    std::printf("\nauto-tuning GEMM for a 64x576x1024 conv layer "
                "(CLTune-style random search):\n");
    gemmlib::TunerOptions options;
    options.maxTrials = 6;
    options.repetitions = 1;
    const auto results = gemmlib::tuneGemm(64, 576, 1024, options);
    for (size_t i = 0; i < std::min<size_t>(3, results.size()); ++i)
        std::printf("  #%zu  %.4fs  %s\n", i + 1, results[i].seconds,
                    results[i].config.str().c_str());
    return 0;
}
