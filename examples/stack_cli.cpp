/**
 * @file
 * stack_cli — assemble and measure any point of the Deep Learning
 * Inference Stack from the command line.
 *
 * Usage:
 *   stack_cli [--model vgg16|resnet18|mobilenet]
 *             [--technique plain|wp|cp|ttq]
 *             [--rate <fraction>]        sparsity / compression rate
 *             [--format dense|csr|packed]
 *             [--width <mult>]           width multiplier (default 0.5)
 *             [--threads <n>]            simulated OpenMP threads
 *             [--platform odroid|i7]
 *             [--backend openmp|opencl|clblast]
 *
 * Prints the configured stack's achieved compression, simulated
 * platform time, host-measured time, and memory footprint.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "hw/cost_model.hpp"
#include "stack/inference_stack.hpp"
#include "stack/report.hpp"

using namespace dlis;

namespace {

const char *
argValue(int argc, char **argv, const char *flag, const char *fallback)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return argv[i + 1];
    return fallback;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string model = argValue(argc, argv, "--model", "vgg16");
    const std::string technique =
        argValue(argc, argv, "--technique", "plain");
    const double rate =
        std::stod(argValue(argc, argv, "--rate", "0.5"));
    const std::string format =
        argValue(argc, argv, "--format", "dense");
    const double width =
        std::stod(argValue(argc, argv, "--width", "0.5"));
    const int threads =
        std::stoi(argValue(argc, argv, "--threads", "4"));
    const std::string platform =
        argValue(argc, argv, "--platform", "odroid");
    const std::string backend =
        argValue(argc, argv, "--backend", "openmp");

    StackConfig config;
    config.modelName = model;
    config.widthMult = width;
    if (technique == "plain") {
        config.technique = Technique::None;
    } else if (technique == "wp") {
        config.technique = Technique::WeightPruning;
        config.wpSparsity = rate;
    } else if (technique == "cp") {
        config.technique = Technique::ChannelPruning;
        config.cpRate = rate;
    } else if (technique == "ttq") {
        config.technique = Technique::Quantisation;
        config.ttqSparsity = rate;
        config.ttqThreshold = 0.1;
    } else {
        fatal("unknown technique '", technique, "'");
    }
    if (format == "csr")
        config.format = WeightFormat::Csr;
    else if (format == "packed")
        config.format = WeightFormat::PackedTernary;
    else if (format != "dense")
        fatal("unknown format '", format, "'");

    InferenceStack stack(config);

    const DeviceModel device =
        platform == "i7" ? intelCoreI7() : odroidXu4();
    const CostModel cost(device);
    const auto costs = stack.stageCosts();

    double simulated = 0.0;
    if (backend == "openmp") {
        simulated = cost.estimateCpu(costs, threads).total();
    } else if (backend == "opencl") {
        simulated = cost.estimateOclHandTuned(costs).total();
    } else if (backend == "clblast") {
        simulated = cost.estimateOclGemmLib(costs).total();
    } else {
        fatal("unknown backend '", backend, "'");
    }

    ExecContext ctx;
    const double host = stack.measureHostSeconds(ctx, 1);
    const Footprint fp = stack.measureFootprint();

    std::printf("stack: %s | %s | rate %.2f | %s | width %.2f\n",
                model.c_str(), techniqueName(config.technique), rate,
                weightFormatName(config.format), width);
    std::printf("  parameters:       %zu\n", stack.parameterCount());
    std::printf("  weight sparsity:  %s\n",
                fmtPercent(stack.achievedSparsity()).c_str());
    std::printf("  compression rate: %s\n",
                fmtPercent(stack.achievedCompressionRate()).c_str());
    std::printf("  MACs remaining:   %s of dense\n",
                fmtPercent(stack.macFraction()).c_str());
    std::printf("  sim %s/%s x%d:    %.4f s\n", device.name.c_str(),
                backend.c_str(), threads, simulated);
    std::printf("  host serial:      %.4f s\n", host);
    std::printf("  memory: total %s MB (weights %s, csr-meta %s, "
                "activations %s)\n",
                fmtMb(fp.total).c_str(), fmtMb(fp.weights).c_str(),
                fmtMb(fp.sparseMeta).c_str(),
                fmtMb(fp.activations).c_str());
    return 0;
}
