/**
 * @file
 * stack_cli — assemble and measure any point of the Deep Learning
 * Inference Stack from the command line.
 *
 * Usage:
 *   stack_cli [--model vgg16|resnet18|mobilenet]
 *             [--technique plain|wp|cp|ttq]
 *             [--rate <fraction>]        sparsity / compression rate
 *             [--format dense|csr|packed]
 *             [--width <mult>]           width multiplier (default 0.5)
 *             [--threads <n>]            simulated OpenMP threads
 *             [--platform odroid|i7]
 *             [--backend serial|openmp|opencl|clblast]
 *             [--algo direct|im2col|winograd]
 *             [--repeat <n>]             host-timing repeats (default 1)
 *             [--verify]                 statically verify the stack
 *                                        configuration (shapes, backend
 *                                        capabilities, sparse formats,
 *                                        memory estimate) and exit;
 *                                        nonzero exit on any error
 *             [--analyze]                numerical-safety analysis:
 *                                        interval dataflow (per-layer
 *                                        activation ranges, overflow /
 *                                        non-finite / dead-output
 *                                        findings) plus per-algorithm
 *                                        worst-case error bounds and
 *                                        their end-to-end composition;
 *                                        nonzero exit on any error
 *             [--json]                   with --analyze: emit the
 *                                        machine-readable JSON report
 *                                        instead of the human one
 *             [--input-min <v>] [--input-max <v>]
 *                                        declared input range the
 *                                        interval pass starts from
 *                                        (default [-1, 1])
 *             [--error-budget <eps>]     with --analyze: warn when the
 *                                        composed e2e bound exceeds
 *                                        eps; with --tune: statically
 *                                        exclude candidates whose
 *                                        bound cannot meet eps
 *             [--trace <out.json>]       Chrome/Perfetto span trace
 *             [--metrics <out.json>]     expected-vs-actual report JSON
 *             [--window <seconds>]       additionally report forward
 *                                        latency over the trailing
 *                                        window (rolling buckets)
 *             [--serve-sim]              replay an open-loop arrival
 *                                        trace through the serving
 *                                        engine instead of measuring
 *                                        one-shot inference
 *             [--requests <n>] [--rate <req/s>] [--workers <n>]
 *             [--max-batch <n>]          serve-sim parameters
 *             [--tune]                   search a per-layer deployment
 *                                        plan (algo x backend x
 *                                        threads per layer), cache it
 *                                        under --plan-dir, and report
 *                                        it against the best single
 *                                        global configuration
 *             [--plan-dir <dir>]         plan cache directory
 *                                        (default results/plans)
 *             [--tune-reps <n>] [--tune-topk <n>]
 *                                        tuner measurement budget
 *             [--mem-budget <bytes>]     with --tune: cap the plan's
 *                                        static peak working set; the
 *                                        planner trades latency for
 *                                        footprint per layer, and an
 *                                        unsatisfiable budget exits 1
 *                                        with plan-mem-infeasible
 *                                        naming the minimum feasible
 *                                        peak
 *             [--mem-report]             per-layer memory breakdown
 *                                        (direct / im2col / winograd)
 *                                        plus a budget -> latency
 *                                        Pareto sweep written as CSV
 *                                        under results/
 *             [--mem-out <file>]         mem-report CSV destination
 *             [--plan <file>]            execute a tuned plan:
 *                                        validate it against this
 *                                        host + network (nonzero exit
 *                                        and a diagnostic on any
 *                                        mismatch), check parity
 *                                        against the serial direct
 *                                        forward, report its p50
 *
 * Prints the configured stack's achieved compression, simulated
 * platform time, host-measured time, and memory footprint. With
 * --repeat > 1 the host time becomes a p50/p90/p99 distribution and
 * the expected-vs-actual table is printed per conv layer. With
 * --serve-sim the stack is instead stood up behind the concurrent
 * batched-inference engine (src/serve) and hammered with a synthetic
 * Poisson arrival trace; the report is throughput, latency
 * percentiles, and the realised batch-size histogram.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>

#include "analysis/analyzer.hpp"
#include "analysis/memory_estimate.hpp"
#include "analysis/verifier.hpp"
#include "core/logging.hpp"
#include "core/rng.hpp"
#include "hw/cost_model.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/engine.hpp"
#include "serve/replay.hpp"
#include "stack/inference_stack.hpp"
#include "stack/report.hpp"
#include "tune/mem_planner.hpp"
#include "tune/tuner.hpp"

using namespace dlis;

namespace {

const char *
argValue(int argc, char **argv, const char *flag, const char *fallback)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return argv[i + 1];
    return fallback;
}

bool
hasFlag(int argc, char **argv, const char *flag)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return true;
    return false;
}

Backend
parseBackend(const std::string &name)
{
    if (name == "serial")
        return Backend::Serial;
    if (name == "openmp")
        return Backend::OpenMP;
    if (name == "opencl")
        return Backend::OclHandTuned;
    if (name == "clblast")
        return Backend::OclGemmLib;
    fatal("unknown backend '", name, "'");
    return Backend::Serial; // unreachable
}

ConvAlgo
parseConvAlgo(const std::string &name)
{
    if (name == "direct")
        return ConvAlgo::Direct;
    if (name == "im2col")
        return ConvAlgo::Im2colGemm;
    if (name == "winograd")
        return ConvAlgo::Winograd;
    fatal("unknown algorithm '", name, "'");
    return ConvAlgo::Direct; // unreachable
}

/** --verify mode: static analysis of the configured stack, no run. */
int
runVerify(InferenceStack &stack, const std::string &backend,
          const std::string &algo, int threads)
{
    analysis::VerifyOptions opts;
    opts.input = stack.inputShape(1);
    opts.backend = parseBackend(backend);
    opts.convAlgo = parseConvAlgo(algo);
    opts.threads = threads;

    const analysis::VerifyReport report =
        analysis::verifyNetwork(stack.model().net, opts);
    std::printf("verify: %s | %s | %s | input %s\n",
                stack.config().modelName.c_str(), backend.c_str(),
                algo.c_str(), opts.input.str().c_str());
    std::printf("%s\n", report.str().c_str());
    if (report.memoryEstimated) {
        const analysis::MemoryEstimate &m = report.memory;
        std::printf("static memory estimate: total %s MB (weights %s, "
                    "csr-meta %s, activations %s, scratch %s)\n",
                    fmtMb(m.total()).c_str(), fmtMb(m.weights).c_str(),
                    fmtMb(m.sparseMeta).c_str(),
                    fmtMb(m.activationsPeak).c_str(),
                    fmtMb(m.scratchPeak).c_str());
    }
    return report.ok() ? 0 : 1;
}

/** --analyze mode: interval dataflow + error bounds, no run. */
int
runAnalyze(int argc, char **argv, InferenceStack &stack,
           const std::string &backend, const std::string &algo,
           int threads)
{
    analysis::AnalyzeOptions opts;
    opts.input = stack.inputShape(1);
    opts.backend = parseBackend(backend);
    opts.convAlgo = parseConvAlgo(algo);
    opts.threads = threads;
    opts.inputRange = analysis::Interval{
        std::stod(argValue(argc, argv, "--input-min", "-1")),
        std::stod(argValue(argc, argv, "--input-max", "1"))};
    opts.errorBudget =
        std::stod(argValue(argc, argv, "--error-budget", "0"));

    const analysis::AnalysisReport report =
        analysis::analyzeNetwork(stack.model().net, opts);
    if (hasFlag(argc, argv, "--json")) {
        std::printf("%s\n", report.json().c_str());
    } else {
        std::printf("analyze: %s | %s | %s | input %s\n",
                    stack.config().modelName.c_str(), backend.c_str(),
                    algo.c_str(), opts.input.str().c_str());
        std::printf("%s\n", report.str().c_str());
    }
    return report.ok() ? 0 : 1;
}

/** --serve-sim mode: open-loop replay through the serving engine. */
int
runServeSim(int argc, char **argv, InferenceStack &stack,
            const std::string &backend, int threads)
{
    serve::ServeConfig serveConfig;
    // The serving pool runs on the host CPU: the OpenCL backends are
    // simulations of other devices and would serialise on the queue
    // model, so everything that is not "openmp" serves serially.
    serveConfig.backend =
        backend == "openmp" ? Backend::OpenMP : Backend::Serial;
    serveConfig.threads = threads;
    serveConfig.workers = static_cast<size_t>(
        std::stoul(argValue(argc, argv, "--workers", "2")));
    serveConfig.maxBatch = static_cast<size_t>(
        std::stoul(argValue(argc, argv, "--max-batch", "8")));

    serve::ReplayConfig replay;
    replay.requests = static_cast<size_t>(
        std::stoul(argValue(argc, argv, "--requests", "256")));
    replay.ratePerSec =
        std::stod(argValue(argc, argv, "--rate", "500"));

    obs::Metrics metrics;
    serve::InferenceEngine engine(stack, serveConfig, &metrics);
    const serve::ReplayReport report =
        serve::replayOpenLoop(engine, replay);
    engine.shutdown();
    serve::printReplayReport(report);
    const serve::EngineStats stats = engine.stats();
    std::printf("  engine:     %llu batches | queue peak %zu | "
                "%llu rejected\n",
                static_cast<unsigned long long>(stats.batches),
                stats.queuePeak,
                static_cast<unsigned long long>(stats.rejected));
    return 0;
}

/** Seconds with 3 significant digits (layer times are microseconds). */
std::string
fmtSig(double seconds)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3g", seconds);
    return buf;
}

/** --tune mode: search, cache and report a per-layer plan. */
int
runTune(int argc, char **argv, InferenceStack &stack,
        const DeviceModel &device)
{
    tune::TuneOptions opts;
    opts.device = device;
    opts.reps = static_cast<size_t>(
        std::stoul(argValue(argc, argv, "--tune-reps", "5")));
    opts.topK = static_cast<size_t>(
        std::stoul(argValue(argc, argv, "--tune-topk", "8")));
    opts.errorBudget =
        std::stod(argValue(argc, argv, "--error-budget", "0"));
    opts.memBudget = static_cast<size_t>(
        std::stoull(argValue(argc, argv, "--mem-budget", "0")));
    const std::string dir =
        argValue(argc, argv, "--plan-dir", "results/plans");

    tune::TuneOutcome outcome;
    try {
        outcome = tune::tuneOrLoadPlan(stack, opts, dir);
    } catch (const tune::PlanError &e) {
        // An infeasible --mem-budget is a diagnosable configuration
        // problem (the message names the minimum feasible peak), not
        // a crash.
        std::printf("%s\n", e.what());
        return 1;
    }
    std::printf("plan cache: %s\n", outcome.cacheHit
                                        ? "hit — search skipped"
                                        : "miss — searched");

    const tune::DeploymentPlan &plan = outcome.plan;
    TablePrinter table("per-layer deployment plan (" +
                       stack.config().modelName + ")");
    table.setHeader({"layer", "backend", "algo", "threads",
                     "measured s", "predicted s", "err bound"});
    for (const tune::LayerPlan &lp : plan.layers)
        table.addRow({lp.layer, tune::backendToken(lp.backend),
                      tune::algoToken(lp.algo),
                      std::to_string(lp.threads),
                      fmtSig(lp.measuredSeconds),
                      fmtSig(lp.predictedSeconds),
                      fmtSig(lp.errorBound)});
    table.print();
    if (plan.totalErrorBound > 0.0) {
        std::printf("static e2e error bound %.6g", plan.totalErrorBound);
        if (plan.errorBudget > 0.0)
            std::printf(" | budget %.6g (%s)", plan.errorBudget,
                        plan.totalErrorBound <= plan.errorBudget
                            ? "met"
                            : "EXCEEDED");
        std::printf("\n");
    }

    if (plan.peakBytesBound > 0) {
        std::printf("static peak footprint bound %zu bytes",
                    plan.peakBytesBound);
        if (plan.memBudget > 0)
            std::printf(" | mem budget %zu bytes (%s)",
                        plan.memBudget,
                        plan.peakBytesBound <= plan.memBudget
                            ? "met"
                            : "EXCEEDED");
        std::printf("\n");
    }

    std::printf("tuned p50 %.6f s | best global (%s) %.6f s | "
                "speedup %.2fx\n",
                plan.tunedP50, plan.bestGlobalConfig.c_str(),
                plan.bestGlobalP50,
                plan.tunedP50 > 0.0
                    ? plan.bestGlobalP50 / plan.tunedP50
                    : 0.0);
    std::printf("plan: %s\n", outcome.path.c_str());
    return 0;
}

/** --mem-report mode: per-layer byte breakdown + a Pareto sweep of
 *  peak-memory budget against achievable latency, written to
 *  results/ for the paper-style trade-off curve. */
int
runMemReport(int argc, char **argv, InferenceStack &stack,
             const DeviceModel &device)
{
    Network &net = stack.model().net;
    const Shape input = stack.inputShape(1);

    // Per-layer byte breakdown: what each candidate algorithm costs
    // in activation transients + scratch, at the shape the layer
    // actually sees (serial pricing; threads add per-thread C tiles).
    TablePrinter table("per-layer memory breakdown (" +
                       stack.config().modelName +
                       ", transient+scratch bytes)");
    table.setHeader({"layer", "input", "output", "direct", "im2col",
                     "winograd"});
    Shape cur = input;
    for (const auto &layerPtr : net.layers()) {
        const Layer &layer = *layerPtr;
        auto algoCell = [&](ConvAlgo algo) {
            const analysis::LayerMemory lm =
                analysis::layerForwardMemory(layer, cur,
                                             Backend::Serial, algo, 1);
            return std::to_string(lm.transientBytes) + "+" +
                   std::to_string(lm.scratchBytes);
        };
        const analysis::LayerMemory lm = analysis::layerForwardMemory(
            layer, cur, Backend::Serial, ConvAlgo::Direct, 1);
        table.addRow({layer.name(), std::to_string(lm.inputBytes),
                      std::to_string(lm.outputBytes),
                      algoCell(ConvAlgo::Direct),
                      algoCell(ConvAlgo::Im2colGemm),
                      algoCell(ConvAlgo::Winograd)});
        cur = layer.outputShape(cur);
    }
    table.print();

    // One tuner pass with the memory-Pareto candidates measured; the
    // huge budget never binds, so the audit carries the unconstrained
    // winners plus every memory-minimal point the sweep can retreat
    // to.
    tune::TuneOptions opts;
    opts.device = device;
    opts.reps = static_cast<size_t>(
        std::stoul(argValue(argc, argv, "--tune-reps", "3")));
    opts.topK = static_cast<size_t>(
        std::stoul(argValue(argc, argv, "--tune-topk", "4")));
    opts.measureEndToEnd = false;
    opts.memBudget = std::numeric_limits<size_t>::max();
    std::vector<tune::LayerSearch> audit;
    const tune::DeploymentPlan plan =
        tune::tunePlan(stack, opts, &audit);

    const tune::MemPlanOutcome probe = tune::planUnderMemBudget(
        net, input, audit, std::numeric_limits<size_t>::max());
    const size_t minPeak = probe.minFeasiblePeak;
    const size_t maxPeak = std::max(plan.peakBytesBound, minPeak);
    std::printf("min feasible peak: %zu bytes\n", minPeak);
    std::printf("unconstrained peak bound: %zu bytes\n",
                plan.peakBytesBound);

    // Pareto sweep: latency the planner can reach at each budget
    // between the two extremes (sum of the chosen layers' measured
    // medians — the same score the tuner optimises).
    const std::string outPath =
        argValue(argc, argv, "--mem-out",
                 ("results/mem_report_" + stack.config().modelName +
                  ".csv")
                     .c_str());
    const std::filesystem::path outDir =
        std::filesystem::path(outPath).parent_path();
    if (!outDir.empty())
        std::filesystem::create_directories(outDir);
    std::ofstream csv(outPath, std::ios::trunc);
    csv << "model,budget_bytes,peak_bytes_bound,latency_s\n";
    TablePrinter sweep("budget -> latency Pareto sweep");
    sweep.setHeader({"budget", "peak bound", "latency s"});
    const size_t steps = 8;
    for (size_t i = 0; i <= steps; ++i) {
        const size_t budget =
            minPeak + (maxPeak - minPeak) * i / steps;
        const tune::MemPlanOutcome mem =
            tune::planUnderMemBudget(net, input, audit, budget);
        if (!mem.feasible)
            continue;
        double latency = 0.0;
        for (size_t li = 0; li < audit.size(); ++li)
            latency += audit[li]
                           .candidates[mem.chosen[li]]
                           .measuredSeconds;
        csv << stack.config().modelName << "," << budget << ","
            << mem.peakBytesBound << "," << latency << "\n";
        sweep.addRow({fmtMb(budget) + " MB",
                      fmtMb(mem.peakBytesBound) + " MB",
                      fmtSig(latency)});
    }
    sweep.print();
    csv.flush();
    if (!csv) {
        warn("could not write mem report to ", outPath);
        return 1;
    }
    std::printf("mem report: %s\n", outPath.c_str());
    return 0;
}

/** --plan mode: validate, parity-check and time a tuned plan. */
int
runPlan(int argc, char **argv, InferenceStack &stack,
        const std::string &planPath)
{
    Network &net = stack.model().net;
    const Shape input = stack.inputShape(1);

    tune::DeploymentPlan plan;
    try {
        plan = tune::loadPlanFile(planPath);
    } catch (const tune::PlanError &e) {
        std::printf("%s\n", e.what());
        std::printf("plan rejected: %s\n", planPath.c_str());
        return 1;
    }
    bool bad = false;
    for (const analysis::Diagnostic &d :
         tune::validatePlan(plan, net, input)) {
        std::printf("%s\n", d.str().c_str());
        bad |= d.severity == analysis::Severity::Error;
    }
    if (bad) {
        std::printf("plan rejected: %s\n", planPath.c_str());
        return 1;
    }

    // Parity gate before timing anything: the plan-driven forward
    // must match the serial/direct reference within the cross-backend
    // tolerance (the plan only re-routes layers; it must not change
    // what the network computes).
    Rng rng(plan.seed ? plan.seed : 42);
    Tensor in(input);
    in.fillUniform(rng, -1.0f, 1.0f);

    tune::PlanRuntime runtime(plan);
    ExecContext planCtx;
    runtime.bind(planCtx);
    const Tensor tuned = net.forward(in, planCtx);

    ExecContext refCtx; // serial, direct, 1 thread
    const Tensor ref = net.forward(in, refCtx);

    bool parity = tuned.shape() == ref.shape();
    for (size_t i = 0; parity && i < ref.numel(); ++i) {
        const float a = tuned[i];
        const float b = ref[i];
        const float scale =
            std::max(1.0f, std::max(std::fabs(a), std::fabs(b)));
        parity = std::fabs(a - b) <= 1e-4f * scale;
    }
    std::printf("plan parity: %s\n", parity ? "ok" : "FAIL");
    if (!parity)
        return 1;

    const size_t repeats = static_cast<size_t>(
        std::stoul(argValue(argc, argv, "--repeat", "5")));
    tune::MeasureOptions mo;
    mo.warmup = 1;
    mo.reps = repeats;
    const double p50 = tune::measureMedianSeconds(
        [&] { (void)net.forward(in, planCtx); }, mo);
    std::printf("plan p50 %.6f s (%zu repeats) | tuned at %.6f s | "
                "best global (%s) %.6f s\n",
                p50, repeats, plan.tunedP50,
                plan.bestGlobalConfig.c_str(), plan.bestGlobalP50);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string model = argValue(argc, argv, "--model", "vgg16");
    const std::string technique =
        argValue(argc, argv, "--technique", "plain");
    const double rate =
        std::stod(argValue(argc, argv, "--rate", "0.5"));
    const std::string format =
        argValue(argc, argv, "--format", "dense");
    const double width =
        std::stod(argValue(argc, argv, "--width", "0.5"));
    const int threads =
        std::stoi(argValue(argc, argv, "--threads", "4"));
    const std::string platform =
        argValue(argc, argv, "--platform", "odroid");
    const std::string backend =
        argValue(argc, argv, "--backend", "openmp");

    StackConfig config;
    config.modelName = model;
    config.widthMult = width;
    if (technique == "plain") {
        config.technique = Technique::None;
    } else if (technique == "wp") {
        config.technique = Technique::WeightPruning;
        config.wpSparsity = rate;
    } else if (technique == "cp") {
        config.technique = Technique::ChannelPruning;
        config.cpRate = rate;
    } else if (technique == "ttq") {
        config.technique = Technique::Quantisation;
        config.ttqSparsity = rate;
        config.ttqThreshold = 0.1;
    } else {
        fatal("unknown technique '", technique, "'");
    }
    if (format == "csr")
        config.format = WeightFormat::Csr;
    else if (format == "packed")
        config.format = WeightFormat::PackedTernary;
    else if (format != "dense")
        fatal("unknown format '", format, "'");

    InferenceStack stack(config);

    if (hasFlag(argc, argv, "--verify"))
        return runVerify(stack, backend,
                         argValue(argc, argv, "--algo", "direct"),
                         threads);

    if (hasFlag(argc, argv, "--analyze"))
        return runAnalyze(argc, argv, stack, backend,
                          argValue(argc, argv, "--algo", "direct"),
                          threads);

    if (hasFlag(argc, argv, "--serve-sim"))
        return runServeSim(argc, argv, stack, backend, threads);

    const DeviceModel device =
        platform == "i7" ? intelCoreI7() : odroidXu4();

    if (hasFlag(argc, argv, "--tune"))
        return runTune(argc, argv, stack, device);

    if (hasFlag(argc, argv, "--mem-report"))
        return runMemReport(argc, argv, stack, device);

    const std::string planPath = argValue(argc, argv, "--plan", "");
    if (!planPath.empty())
        return runPlan(argc, argv, stack, planPath);
    const CostModel cost(device);
    const auto costs = stack.stageCosts();

    double simulated = 0.0;
    if (backend == "openmp") {
        simulated = cost.estimateCpu(costs, threads).total();
    } else if (backend == "opencl") {
        simulated = cost.estimateOclHandTuned(costs).total();
    } else if (backend == "clblast") {
        simulated = cost.estimateOclGemmLib(costs).total();
    } else {
        fatal("unknown backend '", backend, "'");
    }

    const size_t repeats = static_cast<size_t>(
        std::stoul(argValue(argc, argv, "--repeat", "1")));
    const std::string tracePath =
        argValue(argc, argv, "--trace", "");
    const std::string metricsPath =
        argValue(argc, argv, "--metrics", "");

    obs::Tracer tracer;
    obs::Metrics metrics;
    ExecContext ctx;
    // --algo selects the measured conv algorithm too, not only the
    // --verify target (im2col is how --metrics shows the arena warm).
    ctx.convAlgo =
        parseConvAlgo(argValue(argc, argv, "--algo", "direct"));
    if (!tracePath.empty())
        ctx.tracer = &tracer;
    if (!tracePath.empty() || !metricsPath.empty() || repeats > 1)
        ctx.metrics = &metrics;

    const double windowSeconds =
        std::stod(argValue(argc, argv, "--window", "0"));
    const RunReport run = collectRunReport(
        stack, ctx, repeats ? repeats : 1, 1, windowSeconds);
    const Footprint fp = stack.measureFootprint();

    if (!tracePath.empty()) {
        if (tracer.writeChromeTrace(tracePath))
            std::printf("trace: %zu spans -> %s (open in "
                        "ui.perfetto.dev or chrome://tracing)\n",
                        tracer.eventCount(), tracePath.c_str());
        else
            warn("could not write trace to ", tracePath);
    }
    if (!metricsPath.empty()) {
        if (writeRunReportJson(run, metricsPath))
            std::printf("metrics: %s\n", metricsPath.c_str());
        else
            warn("could not write metrics to ", metricsPath);
    }

    std::printf("stack: %s | %s | rate %.2f | %s | width %.2f\n",
                model.c_str(), techniqueName(config.technique), rate,
                weightFormatName(config.format), width);
    std::printf("  parameters:       %zu\n", stack.parameterCount());
    std::printf("  weight sparsity:  %s\n",
                fmtPercent(stack.achievedSparsity()).c_str());
    std::printf("  compression rate: %s\n",
                fmtPercent(stack.achievedCompressionRate()).c_str());
    std::printf("  MACs remaining:   %s of dense\n",
                fmtPercent(stack.macFraction()).c_str());
    std::printf("  sim %s/%s x%d:    %.4f s\n", device.name.c_str(),
                backend.c_str(), threads, simulated);
    if (run.repeats > 1)
        std::printf("  host serial:      p50 %.4f s  p90 %.4f s  "
                    "p99 %.4f s (%zu repeats)\n",
                    run.latency.p50, run.latency.p90, run.latency.p99,
                    run.repeats);
    else
        std::printf("  host serial:      %.4f s\n", run.latency.p50);
    if (run.windowSeconds > 0.0)
        std::printf("  window %.1fs:      p50 %.4f s  p99 %.4f s "
                    "(%llu forwards in window)\n",
                    run.windowSeconds, run.latencyWindow.p50,
                    run.latencyWindow.p99,
                    static_cast<unsigned long long>(
                        run.latencyWindow.count));
    std::printf("  memory: total %s MB (weights %s, csr-meta %s, "
                "activations %s)\n",
                fmtMb(fp.total).c_str(), fmtMb(fp.weights).c_str(),
                fmtMb(fp.sparseMeta).c_str(),
                fmtMb(fp.activations).c_str());
    if (ctx.metrics)
        printRunReport(run);
    return 0;
}
