/**
 * @file
 * Pareto-frontier explorer: sweep every compression technique over its
 * rate axis for one model and print the (accuracy, latency, memory)
 * trade-off surface — the tool a practitioner would use to pick an
 * operating point under constraints (the paper's stated purpose).
 *
 *   $ ./examples/pareto_explorer [vgg16|resnet18|mobilenet]
 */

#include <cstdio>
#include <string>

#include "hw/cost_model.hpp"
#include "stack/calibration.hpp"
#include "stack/inference_stack.hpp"
#include "stack/report.hpp"

using namespace dlis;

namespace {

void
sweepTechnique(const std::string &model, Technique technique,
               const CostModel &odroid)
{
    TablePrinter table(std::string(techniqueName(technique)) + " on " +
                       model +
                       " — accuracy (paper-calibrated) vs simulated "
                       "Odroid-XU4 latency vs memory");
    table.setHeader({"rate", "accuracy", "odroid-8t (s)",
                     "memory (MB)", "on frontier"});

    double best_time = 1e30;
    for (int pct = 0; pct <= 90; pct += 15) {
        const double rate = pct / 100.0;

        StackConfig config;
        config.modelName = model;
        config.technique = technique;
        config.widthMult = 0.5; // keep the example fast
        double accuracy = 0.0;
        switch (technique) {
          case Technique::WeightPruning:
            config.wpSparsity = rate;
            config.format = WeightFormat::Csr;
            accuracy = calib::weightPruningAccuracy(model, rate);
            break;
          case Technique::ChannelPruning:
            config.cpRate = rate;
            accuracy = calib::channelPruningAccuracy(model, rate);
            break;
          case Technique::Quantisation:
            config.ttqSparsity = rate;
            config.ttqThreshold = 0.05 + 0.15 * rate;
            config.format = WeightFormat::Csr;
            accuracy =
                calib::ttqAccuracy(model, config.ttqThreshold);
            break;
          case Technique::None:
            return;
        }

        InferenceStack stack(config);
        const double sec =
            odroid.estimateCpu(stack.stageCosts(), 8).total();
        const size_t mem = stack.measureFootprint().total;

        // A point is on the frontier if nothing cheaper was seen at
        // equal-or-better accuracy earlier in the (sorted) sweep.
        const bool frontier = sec < best_time;
        best_time = std::min(best_time, sec);

        table.addRow({fmtPercent(rate), fmtPercent(accuracy),
                      fmtSeconds(sec), fmtMb(mem),
                      frontier ? "*" : ""});
    }
    table.print();
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string model = argc > 1 ? argv[1] : "vgg16";
    const CostModel odroid(odroidXu4());

    for (Technique technique :
         {Technique::WeightPruning, Technique::ChannelPruning,
          Technique::Quantisation})
        sweepTechnique(model, technique, odroid);

    std::printf("\nRead across the three tables to choose an operating "
                "point under accuracy / latency / memory constraints "
                "— channel pruning owns the frontier, as in the "
                "paper.\n");
    return 0;
}
