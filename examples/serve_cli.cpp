/**
 * @file
 * serve_cli — run the concurrent batched-inference engine against a
 * synthetic open-loop arrival trace.
 *
 * Usage:
 *   serve_cli [--model vgg16|resnet18|mobilenet]
 *             [--width <mult>]        width multiplier (default 0.5)
 *             [--technique plain|wp|cp|ttq] [--rate-param <fraction>]
 *             [--format dense|csr|packed]
 *             [--backend serial|openmp] [--threads <n>]
 *             [--plan <file>]         execute a tuned per-layer
 *                                     DeploymentPlan; the pre-flight
 *                                     rejects a corrupt, stale, or
 *                                     foreign plan before serving
 *             [--workers <n>]         pool size (default 2)
 *             [--node-mem-budget <b>] node RAM budget in bytes; the
 *                                     pre-flight refuses when one
 *                                     replica cannot fit
 *                                     (node-mem-exceeded) and sheds
 *                                     the pool to the replicas that
 *                                     do (0 = off)
 *             [--max-batch <n>]       coalescing limit (default 8)
 *             [--max-delay-us <n>]    batching linger (default 2000)
 *             [--queue <n>]           admission bound (default 64)
 *             [--requests <n>]        trace length (default 256)
 *             [--rate <req/s>]        Poisson arrival rate (default 500)
 *             [--seed <n>]            trace seed (default 1)
 *             [--telemetry-port <p>]  serve /metrics + /statusz on
 *                                     127.0.0.1:<p> (0 = ephemeral)
 *             [--hold]                after the replay, keep serving
 *                                     telemetry until GET /quitquitquit
 *             [--slo-p99-ms <ms>]     windowed-p99 SLO target (0 = off)
 *             [--slo-max-shed <f>]    windowed shed-ratio ceiling
 *             [--trace <path>]        write a Chrome trace of the run
 *
 * Prints offered vs served throughput, enqueue-to-reply latency
 * percentiles, the realised batch-size histogram, and the engine's
 * admission counters — the serving-layer face of the paper's
 * across-stack characterisation. With --telemetry-port, the same
 * quantities (plus the rolling windows) are scrapeable live:
 *
 *   curl http://127.0.0.1:<p>/metrics
 */

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "analysis/diagnostic.hpp"
#include "obs/trace.hpp"
#include "serve/engine.hpp"
#include "serve/replay.hpp"
#include "serve/slo_watchdog.hpp"
#include "serve/telemetry_server.hpp"
#include "stack/inference_stack.hpp"

using namespace dlis;

namespace {

const char *
argValue(int argc, char **argv, const char *flag, const char *fallback)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return argv[i + 1];
    return fallback;
}

bool
hasFlag(int argc, char **argv, const char *flag)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return true;
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    StackConfig config;
    config.modelName = argValue(argc, argv, "--model", "mobilenet");
    config.widthMult =
        std::stod(argValue(argc, argv, "--width", "0.5"));

    const std::string technique =
        argValue(argc, argv, "--technique", "plain");
    const double rateParam =
        std::stod(argValue(argc, argv, "--rate-param", "0.5"));
    if (technique == "wp") {
        config.technique = Technique::WeightPruning;
        config.wpSparsity = rateParam;
    } else if (technique == "cp") {
        config.technique = Technique::ChannelPruning;
        config.cpRate = rateParam;
    } else if (technique == "ttq") {
        config.technique = Technique::Quantisation;
        config.ttqSparsity = rateParam;
        config.ttqThreshold = 0.1;
    } else if (technique != "plain") {
        fatal("unknown technique '", technique, "'");
    }

    const std::string format =
        argValue(argc, argv, "--format", "dense");
    if (format == "csr")
        config.format = WeightFormat::Csr;
    else if (format == "packed")
        config.format = WeightFormat::PackedTernary;
    else if (format != "dense")
        fatal("unknown format '", format, "'");

    serve::ServeConfig serveConfig;
    const std::string backend =
        argValue(argc, argv, "--backend", "serial");
    if (backend == "openmp")
        serveConfig.backend = Backend::OpenMP;
    else if (backend != "serial")
        fatal("serve supports the serial and openmp backends, not '",
              backend, "'");
    serveConfig.threads =
        std::stoi(argValue(argc, argv, "--threads", "4"));
    serveConfig.workers = static_cast<size_t>(
        std::stoul(argValue(argc, argv, "--workers", "2")));
    serveConfig.nodeMemBudget = static_cast<size_t>(std::stoull(
        argValue(argc, argv, "--node-mem-budget", "0")));
    serveConfig.maxBatch = static_cast<size_t>(
        std::stoul(argValue(argc, argv, "--max-batch", "8")));
    serveConfig.maxDelayUs = static_cast<uint64_t>(
        std::stoull(argValue(argc, argv, "--max-delay-us", "2000")));
    serveConfig.queueCapacity = static_cast<size_t>(
        std::stoul(argValue(argc, argv, "--queue", "64")));
    serveConfig.planFile = argValue(argc, argv, "--plan", "");

    serve::ReplayConfig replay;
    replay.requests = static_cast<size_t>(
        std::stoul(argValue(argc, argv, "--requests", "256")));
    replay.ratePerSec =
        std::stod(argValue(argc, argv, "--rate", "500"));
    replay.seed = static_cast<uint64_t>(
        std::stoull(argValue(argc, argv, "--seed", "1")));

    const char *tracePath = argValue(argc, argv, "--trace", "");
    const bool hold = hasFlag(argc, argv, "--hold");
    const bool wantTelemetry =
        hasFlag(argc, argv, "--telemetry-port") || hold;
    const uint16_t telemetryPort = static_cast<uint16_t>(
        std::stoul(argValue(argc, argv, "--telemetry-port", "0")));

    serve::SloConfig slo;
    slo.p99TargetSeconds =
        std::stod(argValue(argc, argv, "--slo-p99-ms", "0")) / 1e3;
    slo.maxShedRatio =
        std::stod(argValue(argc, argv, "--slo-max-shed", "1"));
    slo.minWindowRequests = 8;
    slo.evalPeriodSeconds = 0.5;

    std::printf("serve: %s width %.2f | %s | %s backend x%d | "
                "%zu workers | max-batch %zu | linger %llu us | "
                "queue %zu\n",
                config.modelName.c_str(), config.widthMult,
                techniqueName(config.technique),
                backend.c_str(), serveConfig.threads,
                serveConfig.workers, serveConfig.maxBatch,
                static_cast<unsigned long long>(
                    serveConfig.maxDelayUs),
                serveConfig.queueCapacity);

    InferenceStack stack(config);
    obs::Metrics metrics;
    obs::Tracer tracer;
    std::unique_ptr<serve::InferenceEngine> enginePtr;
    try {
        enginePtr = std::make_unique<serve::InferenceEngine>(
            stack, serveConfig, &metrics,
            tracePath[0] ? &tracer : nullptr);
    } catch (const serve::RejectedError &e) {
        // The pre-flight refused the configuration (typically a
        // stale, foreign, or corrupt --plan): report and exit
        // instead of serving under the wrong configuration.
        std::fprintf(stderr, "serve: rejected — %s\n", e.what());
        return 1;
    }
    serve::InferenceEngine &engine = *enginePtr;
    if (!serveConfig.planFile.empty())
        std::printf("plan: executing %s\n",
                    serveConfig.planFile.c_str());
    for (const analysis::Diagnostic &d : engine.preflightWarnings())
        std::printf("preflight: %s\n", d.str().c_str());
    if (engine.activeWorkers() != serveConfig.workers)
        std::printf("workers: %zu of %zu replicas fit the node "
                    "budget\n",
                    engine.activeWorkers(), serveConfig.workers);

    std::unique_ptr<serve::TelemetryServer> telemetry;
    if (wantTelemetry) {
        telemetry = std::make_unique<serve::TelemetryServer>(
            engine.telemetry(), telemetryPort);
        std::printf("telemetry: curl http://127.0.0.1:%u/metrics\n",
                    static_cast<unsigned>(telemetry->port()));
    }
    serve::SloWatchdog watchdog(engine, slo);
    watchdog.start();

    const serve::ReplayReport report =
        serve::replayOpenLoop(engine, replay);
    serve::printReplayReport(report);

    const serve::EngineStats stats = engine.stats();
    std::printf("  engine:     %llu batches | queue peak %zu | "
                "%llu rejected | window p99 %.3f ms | shed %.1f%%\n",
                static_cast<unsigned long long>(stats.batches),
                stats.queuePeak,
                static_cast<unsigned long long>(stats.rejected),
                stats.latencyWindow.p99 * 1e3,
                stats.shedRatioWindow * 1e2);

    if (telemetry && hold) {
        std::printf("holding: GET /quitquitquit (or SIGTERM) to "
                    "exit\n");
        std::fflush(stdout);
        telemetry->waitForQuit();
    }

    watchdog.stop();
    if (telemetry)
        telemetry->stop();
    engine.shutdown();

    if (tracePath[0]) {
        if (tracer.writeChromeTrace(tracePath))
            std::printf("trace: wrote %zu spans to %s\n",
                        tracer.eventCount(), tracePath);
        else
            std::printf("trace: FAILED to write %s\n", tracePath);
    }
    return 0;
}
